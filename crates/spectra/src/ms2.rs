//! MS2 text format (the paper's query input: `msconvert` RAW → MS2).
//!
//! The MS2 format (McDonald et al., 2004) is line-oriented:
//!
//! ```text
//! H       CreationDate    ...           # header lines, ignored on read
//! S       1       1       503.1234      # scan-start, scan-end, precursor m/z
//! Z       2       1005.2395             # charge, (M+H)+ mass
//! 112.0872 231.5                        # fragment m/z + intensity pairs
//! ...
//! ```
//!
//! One `S` record may carry several `Z` lines (charge ambiguity); this
//! implementation emits one [`Spectrum`] per `Z` line, matching how search
//! engines (including SLM-based ones) treat multi-charge scans.

use crate::spectrum::{Peak, Spectrum};
use lbe_bio::aa::PROTON_MASS;
use lbe_bio::error::BioError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Streaming MS2 reader: yields one [`Spectrum`] at a time, buffering only
/// the current `S` record (plus its pending multi-`Z` expansion).
/// Iteration fuses after the first error.
pub struct Ms2Reader<B: BufRead> {
    src: B,
    lineno: usize,
    line: String,
    // Current S record state.
    scan: u32,
    precursor_mz: f64,
    charges: Vec<u8>,
    peaks: Vec<Peak>,
    have_scan: bool,
    /// Spectra flushed from a completed S record, not yet yielded (one per
    /// `Z` line).
    pending: std::collections::VecDeque<Spectrum>,
    finished: bool,
}

impl Ms2Reader<BufReader<std::fs::File>> {
    /// Opens an MS2 file for streaming.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, BioError> {
        Ok(Self::new(BufReader::new(std::fs::File::open(path)?)))
    }
}

impl<B: BufRead> Ms2Reader<B> {
    /// Streams from an arbitrary buffered reader.
    pub fn new(src: B) -> Self {
        Ms2Reader {
            src,
            lineno: 0,
            line: String::new(),
            scan: 0,
            precursor_mz: 0.0,
            charges: Vec::new(),
            peaks: Vec::new(),
            have_scan: false,
            pending: std::collections::VecDeque::new(),
            finished: false,
        }
    }

    fn err(&mut self, msg: impl Into<String>, line: usize) -> Option<Result<Spectrum, BioError>> {
        self.finished = true;
        Some(Err(BioError::FastaParse {
            msg: msg.into(),
            line,
        }))
    }

    /// Completes the current S record into `pending`.
    fn flush(&mut self) {
        if self.charges.is_empty() {
            // No Z line: assume 1+ (rare, but files exist).
            self.charges.push(1);
        }
        for &z in &self.charges {
            self.pending.push_back(Spectrum::new(
                self.scan,
                self.precursor_mz,
                z,
                self.peaks.clone(),
            ));
        }
        self.charges.clear();
        self.peaks.clear();
    }
}

impl<B: BufRead> Iterator for Ms2Reader<B> {
    type Item = Result<Spectrum, BioError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(s) = self.pending.pop_front() {
                return Some(Ok(s));
            }
            if self.finished {
                return None;
            }
            self.line.clear();
            match self.src.read_line(&mut self.line) {
                Err(e) => {
                    self.finished = true;
                    return Some(Err(e.into()));
                }
                Ok(0) => {
                    self.finished = true;
                    if self.have_scan {
                        self.have_scan = false;
                        self.flush();
                    }
                    continue;
                }
                Ok(_) => {}
            }
            self.lineno += 1;
            let lineno = self.lineno;
            let line = self.line.trim();
            if line.is_empty() || line.starts_with('H') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('S') {
                let mut it = rest.split_whitespace();
                let first = match it.next() {
                    Some(f) => f,
                    None => return self.err("S line missing scan number", lineno),
                };
                let scan: u32 = match first.parse() {
                    Ok(s) => s,
                    Err(_) => return self.err(format!("bad scan number {first:?}"), lineno),
                };
                let _scan_end = it.next();
                let mz = match it.next() {
                    Some(m) => m,
                    None => return self.err("S line missing precursor m/z", lineno),
                };
                let precursor_mz: f64 = match mz.parse() {
                    Ok(m) => m,
                    Err(_) => return self.err(format!("bad precursor m/z {mz:?}"), lineno),
                };
                if self.have_scan {
                    self.flush();
                }
                self.scan = scan;
                self.precursor_mz = precursor_mz;
                self.have_scan = true;
            } else if let Some(rest) = line.strip_prefix('Z') {
                let mut it = rest.split_whitespace();
                let z = match it.next() {
                    Some(z) => z,
                    None => return self.err("Z line missing charge", lineno),
                };
                let z: u8 = match z.parse() {
                    Ok(z) => z,
                    Err(_) => return self.err(format!("bad charge {z:?}"), lineno),
                };
                self.charges.push(z);
            } else {
                if !self.have_scan {
                    return self.err("peak line before first S record", lineno);
                }
                let mut it = line.split_whitespace();
                match (it.next(), it.next()) {
                    (Some(mz), Some(inten)) => {
                        let mz: f64 = match mz.parse() {
                            Ok(v) => v,
                            Err(_) => return self.err(format!("bad peak m/z {mz:?}"), lineno),
                        };
                        let inten: f32 = match inten.parse() {
                            Ok(v) => v,
                            Err(_) => {
                                return self.err(format!("bad peak intensity {inten:?}"), lineno)
                            }
                        };
                        self.peaks.push(Peak::new(mz, inten));
                    }
                    _ => return self.err(format!("malformed peak line {line:?}"), lineno),
                }
            }
        }
    }
}

/// Reads spectra from an MS2 stream.
pub fn read_ms2<R: Read>(reader: R) -> Result<Vec<Spectrum>, BioError> {
    Ms2Reader::new(BufReader::new(reader)).collect()
}

/// Reads an MS2 file from disk.
pub fn read_ms2_path(path: impl AsRef<Path>) -> Result<Vec<Spectrum>, BioError> {
    read_ms2(std::fs::File::open(path)?)
}

/// Writes spectra as MS2. Each spectrum becomes one `S` record with a single
/// `Z` line.
pub fn write_ms2<W: Write>(writer: W, spectra: &[Spectrum]) -> Result<(), BioError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "H\tCreationDate\tlbe-spectra")?;
    writeln!(w, "H\tExtractor\tlbe-spectra MS2 writer")?;
    for s in spectra {
        writeln!(w, "S\t{}\t{}\t{:.5}", s.scan, s.scan, s.precursor_mz)?;
        let mh = s.precursor_neutral_mass() + PROTON_MASS;
        writeln!(w, "Z\t{}\t{:.5}", s.charge, mh)?;
        for p in &s.peaks {
            writeln!(w, "{:.5} {:.2}", p.mz, p.intensity)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes an MS2 file to disk.
pub fn write_ms2_path(path: impl AsRef<Path>, spectra: &[Spectrum]) -> Result<(), BioError> {
    write_ms2(std::fs::File::create(path)?, spectra)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Spectrum> {
        vec![
            Spectrum::new(
                1,
                503.1234,
                2,
                vec![Peak::new(112.0872, 231.5), Peak::new(358.9, 80.0)],
            ),
            Spectrum::new(7, 611.5, 3, vec![Peak::new(201.1, 55.0)]),
        ]
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_ms2(&mut buf, &sample()).unwrap();
        let back = read_ms2(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].scan, 1);
        assert_eq!(back[0].charge, 2);
        assert!((back[0].precursor_mz - 503.1234).abs() < 1e-4);
        assert_eq!(back[0].peak_count(), 2);
        assert!((back[1].peaks[0].mz - 201.1).abs() < 1e-4);
    }

    #[test]
    fn header_lines_ignored() {
        let input = "H\tjunk\nS\t3\t3\t450.5\nZ\t2\t900.0\n100.0 1.0\n";
        let s = read_ms2(input.as_bytes()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].scan, 3);
    }

    #[test]
    fn multiple_z_lines_duplicate_scan() {
        let input = "S\t3\t3\t450.5\nZ\t2\t900.0\nZ\t3\t1350.0\n100.0 1.0\n";
        let s = read_ms2(input.as_bytes()).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].charge, 2);
        assert_eq!(s[1].charge, 3);
        assert_eq!(s[0].peaks, s[1].peaks);
    }

    #[test]
    fn missing_z_defaults_to_singly_charged() {
        let input = "S\t3\t3\t450.5\n100.0 1.0\n";
        let s = read_ms2(input.as_bytes()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].charge, 1);
    }

    #[test]
    fn peak_before_scan_is_error() {
        assert!(read_ms2("100.0 1.0\n".as_bytes()).is_err());
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(read_ms2("S\tx\t1\t450.5\n".as_bytes()).is_err());
        assert!(read_ms2("S\t1\t1\tnotanumber\n".as_bytes()).is_err());
        assert!(read_ms2("S\t1\t1\t450.5\nZ\tbad\t900\n".as_bytes()).is_err());
        assert!(read_ms2("S\t1\t1\t450.5\n100.0\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_ok() {
        assert!(read_ms2("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn streaming_matches_eager() {
        let dir = std::env::temp_dir().join("lbe_ms2_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.ms2");
        write_ms2_path(&path, &sample()).unwrap();
        let eager = read_ms2_path(&path).unwrap();
        let streamed: Vec<Spectrum> = Ms2Reader::open(&path)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, eager);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_expands_multi_z_records() {
        let input = "S\t3\t3\t450.5\nZ\t2\t900.0\nZ\t3\t1350.0\n100.0 1.0\n";
        let streamed: Vec<Spectrum> = Ms2Reader::new(std::io::BufReader::new(input.as_bytes()))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, read_ms2(input.as_bytes()).unwrap());
        assert_eq!(streamed.len(), 2);
    }

    #[test]
    fn streaming_error_fuses_iteration() {
        let input = "S\t1\t1\t450.5\n100.0 1.0\nS\tbad\t2\t500.0\n";
        let mut r = Ms2Reader::new(std::io::BufReader::new(input.as_bytes()));
        assert!(r.next().unwrap().is_err());
        assert!(r.next().is_none());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("lbe_spectra_ms2_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ms2");
        write_ms2_path(&path, &sample()).unwrap();
        let back = read_ms2_path(&path).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
