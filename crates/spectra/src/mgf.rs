//! Mascot Generic Format (MGF) — the other text format every proteomics
//! pipeline speaks. Provided so datasets generated here can be fed to
//! external engines and vice versa.
//!
//! ```text
//! BEGIN IONS
//! TITLE=scan=1
//! PEPMASS=503.1234 12345.0
//! CHARGE=2+
//! SCANS=1
//! 112.0872 231.5
//! END IONS
//! ```

use crate::spectrum::{Peak, Spectrum};
use lbe_bio::error::BioError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Reads spectra from an MGF stream.
pub fn read_mgf<R: Read>(reader: R) -> Result<Vec<Spectrum>, BioError> {
    let reader = BufReader::new(reader);
    let mut out = Vec::new();
    let mut in_ions = false;
    let mut title = String::new();
    let mut pepmass: f64 = 0.0;
    let mut charge: u8 = 1;
    let mut scan: u32 = 0;
    let mut peaks: Vec<Peak> = Vec::new();
    let mut next_scan: u32 = 0;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.eq_ignore_ascii_case("BEGIN IONS") {
            if in_ions {
                return Err(BioError::FastaParse {
                    msg: "nested BEGIN IONS".into(),
                    line: lineno,
                });
            }
            in_ions = true;
            title.clear();
            pepmass = 0.0;
            charge = 1;
            scan = next_scan;
            next_scan += 1;
            peaks.clear();
            continue;
        }
        if line.eq_ignore_ascii_case("END IONS") {
            if !in_ions {
                return Err(BioError::FastaParse {
                    msg: "END IONS without BEGIN IONS".into(),
                    line: lineno,
                });
            }
            let mut s = Spectrum::new(scan, pepmass, charge, std::mem::take(&mut peaks));
            s.title = std::mem::take(&mut title);
            out.push(s);
            in_ions = false;
            continue;
        }
        if !in_ions {
            // Global parameter lines (e.g. COM=, ITOL=) are legal; skip them.
            if line.contains('=') {
                continue;
            }
            return Err(BioError::FastaParse {
                msg: format!("unexpected line outside BEGIN/END IONS: {line:?}"),
                line: lineno,
            });
        }
        if let Some((key, value)) = line.split_once('=') {
            match key.to_ascii_uppercase().as_str() {
                "TITLE" => title = value.trim().to_string(),
                "PEPMASS" => {
                    let first = value.split_whitespace().next().unwrap_or("");
                    pepmass = first.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad PEPMASS {value:?}"),
                        line: lineno,
                    })?;
                }
                "CHARGE" => {
                    let v = value.trim().trim_end_matches(['+', '-']);
                    charge = v.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad CHARGE {value:?}"),
                        line: lineno,
                    })?;
                }
                "SCANS" => {
                    scan = value.trim().parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad SCANS {value:?}"),
                        line: lineno,
                    })?;
                }
                _ => {} // RTINSECONDS etc.: ignored
            }
        } else {
            let mut it = line.split_whitespace();
            match (it.next(), it.next()) {
                (Some(mz), Some(inten)) => {
                    let mz: f64 = mz.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad peak m/z {mz:?}"),
                        line: lineno,
                    })?;
                    let inten: f32 = inten.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad peak intensity {inten:?}"),
                        line: lineno,
                    })?;
                    peaks.push(Peak::new(mz, inten));
                }
                (Some(mz), None) => {
                    // Intensity-less peaks are legal MGF; assume 1.0.
                    let mz: f64 = mz.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad peak m/z {mz:?}"),
                        line: lineno,
                    })?;
                    peaks.push(Peak::new(mz, 1.0));
                }
                _ => unreachable!("split_whitespace on non-empty line yields at least one token"),
            }
        }
    }
    if in_ions {
        return Err(BioError::FastaParse {
            msg: "unterminated BEGIN IONS".into(),
            line: 0,
        });
    }
    Ok(out)
}

/// Writes spectra as MGF.
pub fn write_mgf<W: Write>(writer: W, spectra: &[Spectrum]) -> Result<(), BioError> {
    let mut w = BufWriter::new(writer);
    for s in spectra {
        writeln!(w, "BEGIN IONS")?;
        if s.title.is_empty() {
            writeln!(w, "TITLE=scan={}", s.scan)?;
        } else {
            writeln!(w, "TITLE={}", s.title)?;
        }
        writeln!(w, "PEPMASS={:.5}", s.precursor_mz)?;
        writeln!(w, "CHARGE={}+", s.charge)?;
        writeln!(w, "SCANS={}", s.scan)?;
        for p in &s.peaks {
            writeln!(w, "{:.5} {:.2}", p.mz, p.intensity)?;
        }
        writeln!(w, "END IONS")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Spectrum> {
        let mut s = Spectrum::new(5, 503.1234, 2, vec![Peak::new(112.0872, 231.5)]);
        s.title = "my spectrum".into();
        vec![
            s,
            Spectrum::new(
                9,
                611.5,
                3,
                vec![Peak::new(201.1, 55.0), Peak::new(300.0, 5.0)],
            ),
        ]
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_mgf(&mut buf, &sample()).unwrap();
        let back = read_mgf(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].title, "my spectrum");
        assert_eq!(back[0].scan, 5);
        assert_eq!(back[0].charge, 2);
        assert!((back[0].precursor_mz - 503.1234).abs() < 1e-4);
        assert_eq!(back[1].peak_count(), 2);
    }

    #[test]
    fn charge_suffix_variants() {
        for (text, expect) in [("2+", 2u8), ("3", 3), ("1+", 1)] {
            let input = format!("BEGIN IONS\nPEPMASS=400\nCHARGE={text}\n100 1\nEND IONS\n");
            let s = read_mgf(input.as_bytes()).unwrap();
            assert_eq!(s[0].charge, expect, "{text}");
        }
    }

    #[test]
    fn pepmass_with_intensity_token() {
        let input = "BEGIN IONS\nPEPMASS=400.5 12345.0\n100 1\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert!((s[0].precursor_mz - 400.5).abs() < 1e-9);
    }

    #[test]
    fn intensity_less_peaks_get_one() {
        let input = "BEGIN IONS\nPEPMASS=400\n100.5\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!(s[0].peaks[0].intensity, 1.0);
    }

    #[test]
    fn global_params_skipped() {
        let input = "COM=run 1\nITOL=0.5\nBEGIN IONS\nPEPMASS=400\n100 1\nEND IONS\n";
        assert_eq!(read_mgf(input.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn structural_errors() {
        assert!(read_mgf("BEGIN IONS\nBEGIN IONS\n".as_bytes()).is_err());
        assert!(read_mgf("END IONS\n".as_bytes()).is_err());
        assert!(read_mgf("BEGIN IONS\nPEPMASS=400\n".as_bytes()).is_err());
        assert!(read_mgf("stray line\n".as_bytes()).is_err());
    }

    #[test]
    fn default_scan_numbers_increment() {
        let input = "BEGIN IONS\nPEPMASS=1\nEND IONS\nBEGIN IONS\nPEPMASS=2\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!((s[0].scan, s[1].scan), (0, 1));
    }
}
