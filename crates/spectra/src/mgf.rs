//! Mascot Generic Format (MGF) — the other text format every proteomics
//! pipeline speaks. Provided so datasets generated here can be fed to
//! external engines and vice versa.
//!
//! ```text
//! BEGIN IONS
//! TITLE=scan=1
//! PEPMASS=503.1234 12345.0
//! CHARGE=2+
//! SCANS=1
//! 112.0872 231.5
//! END IONS
//! ```

use crate::spectrum::{Peak, Spectrum};
use lbe_bio::error::BioError;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// One parsed `BEGIN IONS` … `END IONS` block: the explicit `SCANS=` id,
/// if any, and the spectrum (its `scan` field is a placeholder when no
/// explicit id was present — callers assign the final id).
type MgfBlock = (Option<u32>, Spectrum);

/// Streaming block-level MGF parser: the single parsing implementation
/// behind both [`read_mgf`] (eager) and [`MgfReader`] (streaming).
struct MgfBlocks<B: BufRead> {
    src: B,
    lineno: usize,
    line: String,
    finished: bool,
}

impl<B: BufRead> MgfBlocks<B> {
    fn new(src: B) -> Self {
        MgfBlocks {
            src,
            lineno: 0,
            line: String::new(),
            finished: false,
        }
    }

    fn err(&mut self, msg: impl Into<String>, line: usize) -> Option<Result<MgfBlock, BioError>> {
        self.finished = true;
        Some(Err(BioError::FastaParse {
            msg: msg.into(),
            line,
        }))
    }
}

impl<B: BufRead> Iterator for MgfBlocks<B> {
    type Item = Result<MgfBlock, BioError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let mut in_ions = false;
        let mut title = String::new();
        let mut pepmass: f64 = 0.0;
        let mut charge: u8 = 1;
        let mut explicit_scan: Option<u32> = None;
        let mut peaks: Vec<Peak> = Vec::new();
        loop {
            self.line.clear();
            match self.src.read_line(&mut self.line) {
                Err(e) => {
                    self.finished = true;
                    return Some(Err(e.into()));
                }
                Ok(0) => {
                    self.finished = true;
                    if in_ions {
                        return self.err("unterminated BEGIN IONS", 0);
                    }
                    return None;
                }
                Ok(_) => {}
            }
            self.lineno += 1;
            let lineno = self.lineno;
            let line = self.line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.eq_ignore_ascii_case("BEGIN IONS") {
                if in_ions {
                    return self.err("nested BEGIN IONS", lineno);
                }
                in_ions = true;
                continue;
            }
            if line.eq_ignore_ascii_case("END IONS") {
                if !in_ions {
                    return self.err("END IONS without BEGIN IONS", lineno);
                }
                let mut s = Spectrum::new(explicit_scan.unwrap_or(0), pepmass, charge, peaks);
                s.title = title;
                return Some(Ok((explicit_scan, s)));
            }
            if !in_ions {
                // Global parameter lines (e.g. COM=, ITOL=) are legal; skip.
                if line.contains('=') {
                    continue;
                }
                return self.err(
                    format!("unexpected line outside BEGIN/END IONS: {line:?}"),
                    lineno,
                );
            }
            if let Some((key, value)) = line.split_once('=') {
                match key.to_ascii_uppercase().as_str() {
                    "TITLE" => title = value.trim().to_string(),
                    "PEPMASS" => {
                        let first = value.split_whitespace().next().unwrap_or("");
                        pepmass = match first.parse() {
                            Ok(v) => v,
                            Err(_) => return self.err(format!("bad PEPMASS {value:?}"), lineno),
                        };
                    }
                    "CHARGE" => {
                        // Mascot's multi-charge syntax ("2+ and 3+") lists
                        // alternatives; take the first (Spectrum carries one
                        // charge — the MS2 format expresses ambiguity as
                        // multiple Z lines instead).
                        let v = value.split_whitespace().next().unwrap_or("");
                        // `2-` (or `-2`) is negative polarity, not charge 2:
                        // Spectrum has no polarity representation, so
                        // silently flipping the sign would corrupt
                        // downstream m/z → mass arithmetic. Reject it.
                        if v.contains('-') {
                            return self.err(
                                format!(
                                    "negative-polarity CHARGE {value:?} is not supported \
                                     (only positive charge states can be represented)"
                                ),
                                lineno,
                            );
                        }
                        let v = v.trim_end_matches('+');
                        charge = match v.parse() {
                            Ok(c) => c,
                            Err(_) => return self.err(format!("bad CHARGE {value:?}"), lineno),
                        };
                    }
                    "SCANS" => {
                        explicit_scan = match value.trim().parse() {
                            Ok(id) => Some(id),
                            Err(_) => return self.err(format!("bad SCANS {value:?}"), lineno),
                        };
                    }
                    _ => {} // RTINSECONDS etc.: ignored
                }
            } else {
                let mut it = line.split_whitespace();
                match (it.next(), it.next()) {
                    (Some(mz), Some(inten)) => {
                        let mz: f64 = match mz.parse() {
                            Ok(v) => v,
                            Err(_) => return self.err(format!("bad peak m/z {mz:?}"), lineno),
                        };
                        let inten: f32 = match inten.parse() {
                            Ok(v) => v,
                            Err(_) => {
                                return self.err(format!("bad peak intensity {inten:?}"), lineno)
                            }
                        };
                        peaks.push(Peak::new(mz, inten));
                    }
                    (Some(mz), None) => {
                        // Intensity-less peaks are legal MGF; assume 1.0.
                        let mz: f64 = match mz.parse() {
                            Ok(v) => v,
                            Err(_) => return self.err(format!("bad peak m/z {mz:?}"), lineno),
                        };
                        peaks.push(Peak::new(mz, 1.0));
                    }
                    _ => {
                        unreachable!("split_whitespace on non-empty line yields at least one token")
                    }
                }
            }
        }
    }
}

/// Reads spectra from an MGF stream.
///
/// Blocks with an explicit `SCANS=` keep that id; blocks without one are
/// auto-assigned ids *after* the whole file is parsed, skipping every
/// explicit id in the file — mixed files can never collide an auto id with
/// an explicit one, regardless of which comes first.
pub fn read_mgf<R: Read>(reader: R) -> Result<Vec<Spectrum>, BioError> {
    let mut out = Vec::new();
    // Indices into `out` of blocks awaiting an auto-assigned id, and the
    // set of ids taken explicitly somewhere in the file.
    let mut pending_auto: Vec<usize> = Vec::new();
    let mut explicit_ids: HashSet<u32> = HashSet::new();
    for block in MgfBlocks::new(BufReader::new(reader)) {
        let (explicit_scan, s) = block?;
        match explicit_scan {
            Some(id) => {
                explicit_ids.insert(id);
            }
            None => pending_auto.push(out.len()),
        }
        out.push(s);
    }

    // Post-parse pass: hand out auto ids from 0 upward, skipping every
    // explicit id anywhere in the file (earlier *or later* than the auto
    // block).
    let mut next: u64 = 0;
    for i in pending_auto {
        let id = crate::scanid::next_free(&mut next, &explicit_ids).ok_or_else(|| {
            BioError::FastaParse {
                msg: "scan id space exhausted while auto-numbering".into(),
                line: 0,
            }
        })?;
        out[i].scan = id;
    }
    Ok(out)
}

/// Pre-scan pass of [`MgfReader`]: the explicit `SCANS=` ids of the file.
/// Mirrors the parser's semantics — a block with several `SCANS=` lines
/// keeps only the **last** one, so only that id is "taken". Structure is
/// not validated here; the parsing pass reports errors with line numbers.
fn prescan_scan_ids<B: BufRead>(src: B) -> Result<HashSet<u32>, BioError> {
    let mut ids = HashSet::new();
    let mut in_ions = false;
    // The last parseable SCANS= of the current block (last-wins, like the
    // parser); committed at END IONS.
    let mut current: Option<u32> = None;
    for line in src.lines() {
        let line = line?;
        let line = line.trim();
        if line.eq_ignore_ascii_case("BEGIN IONS") {
            in_ions = true;
            current = None;
        } else if line.eq_ignore_ascii_case("END IONS") {
            if let Some(id) = current.take() {
                ids.insert(id);
            }
            in_ions = false;
        } else if in_ions {
            if let Some((key, value)) = line.split_once('=') {
                if key.eq_ignore_ascii_case("SCANS") {
                    if let Ok(id) = value.trim().parse::<u32>() {
                        current = Some(id);
                    }
                }
            }
        }
    }
    Ok(ids)
}

/// Streaming MGF reader: yields one [`Spectrum`] at a time, buffering only
/// the current block. Iteration fuses after the first error.
pub struct MgfReader<B: BufRead> {
    blocks: MgfBlocks<B>,
    taken_ids: HashSet<u32>,
    next_auto: u64,
    /// Deferred pre-scan source ([`MgfReader::open`] only): consumed by a
    /// whole-file id scan the first time a block without `SCANS=` needs an
    /// auto id. Files where every block carries an id stream in a single
    /// pass.
    prescan_path: Option<std::path::PathBuf>,
    finished: bool,
}

impl MgfReader<BufReader<std::fs::File>> {
    /// Opens an MGF file for streaming. Blocks without an explicit
    /// `SCANS=` get exactly the ids the eager [`read_mgf`] assigns (lowest
    /// free, avoiding every explicit id anywhere in the file) — gathered
    /// by a lazy pre-scan pass that only runs if such a block is actually
    /// encountered, so the common all-ids file is read once.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, BioError> {
        let path = path.as_ref();
        let mut reader =
            Self::from_reader(BufReader::new(std::fs::File::open(path)?), HashSet::new());
        reader.prescan_path = Some(path.to_path_buf());
        Ok(reader)
    }
}

impl<B: BufRead> MgfReader<B> {
    /// Streams from an arbitrary reader. `known_ids` seeds the set of ids
    /// that auto-assignment must avoid; pass the file's full explicit-id
    /// set for eager-identical numbering (what [`MgfReader::open`] gathers
    /// with its lazy pre-scan).
    pub fn from_reader(src: B, known_ids: HashSet<u32>) -> Self {
        MgfReader {
            blocks: MgfBlocks::new(src),
            taken_ids: known_ids,
            next_auto: 0,
            prescan_path: None,
            finished: false,
        }
    }
}

impl<B: BufRead> Iterator for MgfReader<B> {
    type Item = Result<Spectrum, BioError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let (explicit_scan, mut s) = match self.blocks.next()? {
            Ok(b) => b,
            Err(e) => {
                self.finished = true;
                return Some(Err(e));
            }
        };
        match explicit_scan {
            Some(id) => {
                self.taken_ids.insert(id);
                s.scan = id;
            }
            None => {
                // First auto id needed: collect the file's explicit ids so
                // autos can never collide with one appearing later.
                if let Some(path) = self.prescan_path.take() {
                    let scanned = std::fs::File::open(&path)
                        .map_err(BioError::from)
                        .and_then(|f| prescan_scan_ids(BufReader::new(f)));
                    match scanned {
                        Ok(ids) => self.taken_ids.extend(ids),
                        Err(e) => {
                            self.finished = true;
                            return Some(Err(e));
                        }
                    }
                }
                match crate::scanid::next_free(&mut self.next_auto, &self.taken_ids) {
                    Some(id) => s.scan = id,
                    None => {
                        self.finished = true;
                        return Some(Err(BioError::FastaParse {
                            msg: "scan id space exhausted while auto-numbering".into(),
                            line: 0,
                        }));
                    }
                }
            }
        }
        Some(Ok(s))
    }
}

/// Writes spectra as MGF.
pub fn write_mgf<W: Write>(writer: W, spectra: &[Spectrum]) -> Result<(), BioError> {
    let mut w = BufWriter::new(writer);
    for s in spectra {
        writeln!(w, "BEGIN IONS")?;
        if s.title.is_empty() {
            writeln!(w, "TITLE=scan={}", s.scan)?;
        } else {
            writeln!(w, "TITLE={}", s.title)?;
        }
        writeln!(w, "PEPMASS={:.5}", s.precursor_mz)?;
        writeln!(w, "CHARGE={}+", s.charge)?;
        writeln!(w, "SCANS={}", s.scan)?;
        for p in &s.peaks {
            writeln!(w, "{:.5} {:.2}", p.mz, p.intensity)?;
        }
        writeln!(w, "END IONS")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Spectrum> {
        let mut s = Spectrum::new(5, 503.1234, 2, vec![Peak::new(112.0872, 231.5)]);
        s.title = "my spectrum".into();
        vec![
            s,
            Spectrum::new(
                9,
                611.5,
                3,
                vec![Peak::new(201.1, 55.0), Peak::new(300.0, 5.0)],
            ),
        ]
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_mgf(&mut buf, &sample()).unwrap();
        let back = read_mgf(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].title, "my spectrum");
        assert_eq!(back[0].scan, 5);
        assert_eq!(back[0].charge, 2);
        assert!((back[0].precursor_mz - 503.1234).abs() < 1e-4);
        assert_eq!(back[1].peak_count(), 2);
    }

    #[test]
    fn charge_suffix_variants() {
        // Includes Mascot's multi-charge list syntax: first charge wins.
        for (text, expect) in [("2+", 2u8), ("3", 3), ("1+", 1), ("2+ and 3+", 2)] {
            let input = format!("BEGIN IONS\nPEPMASS=400\nCHARGE={text}\n100 1\nEND IONS\n");
            let s = read_mgf(input.as_bytes()).unwrap();
            assert_eq!(s[0].charge, expect, "{text}");
        }
    }

    #[test]
    fn pepmass_with_intensity_token() {
        let input = "BEGIN IONS\nPEPMASS=400.5 12345.0\n100 1\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert!((s[0].precursor_mz - 400.5).abs() < 1e-9);
    }

    #[test]
    fn intensity_less_peaks_get_one() {
        let input = "BEGIN IONS\nPEPMASS=400\n100.5\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!(s[0].peaks[0].intensity, 1.0);
    }

    #[test]
    fn global_params_skipped() {
        let input = "COM=run 1\nITOL=0.5\nBEGIN IONS\nPEPMASS=400\n100 1\nEND IONS\n";
        assert_eq!(read_mgf(input.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn structural_errors() {
        assert!(read_mgf("BEGIN IONS\nBEGIN IONS\n".as_bytes()).is_err());
        assert!(read_mgf("END IONS\n".as_bytes()).is_err());
        assert!(read_mgf("BEGIN IONS\nPEPMASS=400\n".as_bytes()).is_err());
        assert!(read_mgf("stray line\n".as_bytes()).is_err());
    }

    #[test]
    fn default_scan_numbers_increment() {
        let input = "BEGIN IONS\nPEPMASS=1\nEND IONS\nBEGIN IONS\nPEPMASS=2\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!((s[0].scan, s[1].scan), (0, 1));
    }

    #[test]
    fn mixed_explicit_and_auto_ids_never_collide() {
        // Mixed file: explicit ids 7 and 2; the auto-numbered blocks take
        // the lowest free ids (the old parser handed out ids from a counter
        // SCANS= never touched, colliding with explicit ids).
        let input = "BEGIN IONS\nPEPMASS=1\nSCANS=7\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=2\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=3\nSCANS=2\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=4\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        let scans: Vec<u32> = s.iter().map(|x| x.scan).collect();
        assert_eq!(scans, vec![7, 0, 2, 1]);
        let mut dedup = scans.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), scans.len(), "scan ids must be unique");
    }

    #[test]
    fn auto_block_before_explicit_zero_does_not_collide() {
        // The explicit id arrives *after* the auto block — auto assignment
        // must still avoid it (it happens in a post-parse pass).
        let input = "BEGIN IONS\nPEPMASS=1\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=2\nSCANS=0\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!((s[0].scan, s[1].scan), (1, 0));
    }

    #[test]
    fn auto_ids_not_wasted_on_explicit_blocks() {
        // An explicit low id does not burn an auto id: autos fill the
        // lowest ids not taken explicitly.
        let input = "BEGIN IONS\nPEPMASS=1\nSCANS=0\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=2\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!((s[0].scan, s[1].scan), (0, 1));
    }

    #[test]
    fn streaming_matches_eager_on_mixed_ids() {
        // Explicit ids 7 and 2 interleaved with auto blocks: the streaming
        // reader's pre-scan must reproduce the eager assignment exactly.
        let input = "BEGIN IONS\nPEPMASS=1\nSCANS=7\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=2\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=3\nSCANS=2\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=4\nEND IONS\n";
        let dir = std::env::temp_dir().join("lbe_mgf_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.mgf");
        std::fs::write(&path, input).unwrap();
        let eager = read_mgf(input.as_bytes()).unwrap();
        let streamed: Vec<Spectrum> = MgfReader::open(&path)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, eager);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_matches_eager_when_block_overrides_scans() {
        // Two SCANS= lines in one block: the parser keeps the LAST (7), so
        // only 7 is taken and the auto block gets 0. The pre-scan must use
        // the same last-wins rule — treating the overridden 0 as taken
        // would shift the auto id to 1 and diverge from the eager reader.
        let input = "BEGIN IONS\nPEPMASS=1\nSCANS=0\nSCANS=7\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=2\nEND IONS\n";
        let dir = std::env::temp_dir().join("lbe_mgf_override_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("override.mgf");
        std::fs::write(&path, input).unwrap();
        let eager = read_mgf(input.as_bytes()).unwrap();
        assert_eq!(eager.iter().map(|s| s.scan).collect::<Vec<_>>(), vec![7, 0]);
        let streamed: Vec<Spectrum> = MgfReader::open(&path)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, eager);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_error_fuses_iteration() {
        let input = "BEGIN IONS\nPEPMASS=1\nEND IONS\nstray\n";
        let mut r = MgfReader::from_reader(
            std::io::BufReader::new(input.as_bytes()),
            std::collections::HashSet::new(),
        );
        assert!(r.next().unwrap().is_ok());
        assert!(r.next().unwrap().is_err());
        assert!(r.next().is_none());
    }

    #[test]
    fn negative_polarity_charge_rejected() {
        for text in ["2-", "-2", "1-"] {
            let input = format!("BEGIN IONS\nPEPMASS=400\nCHARGE={text}\n100 1\nEND IONS\n");
            let err = read_mgf(input.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains("negative-polarity"),
                "{text}: {err}"
            );
        }
    }
}
