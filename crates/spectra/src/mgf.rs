//! Mascot Generic Format (MGF) — the other text format every proteomics
//! pipeline speaks. Provided so datasets generated here can be fed to
//! external engines and vice versa.
//!
//! ```text
//! BEGIN IONS
//! TITLE=scan=1
//! PEPMASS=503.1234 12345.0
//! CHARGE=2+
//! SCANS=1
//! 112.0872 231.5
//! END IONS
//! ```

use crate::spectrum::{Peak, Spectrum};
use lbe_bio::error::BioError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Reads spectra from an MGF stream.
///
/// Blocks with an explicit `SCANS=` keep that id; blocks without one are
/// auto-assigned ids *after* the whole file is parsed, skipping every
/// explicit id in the file — mixed files can never collide an auto id with
/// an explicit one, regardless of which comes first.
pub fn read_mgf<R: Read>(reader: R) -> Result<Vec<Spectrum>, BioError> {
    let reader = BufReader::new(reader);
    let mut out = Vec::new();
    let mut in_ions = false;
    let mut title = String::new();
    let mut pepmass: f64 = 0.0;
    let mut charge: u8 = 1;
    // An explicit `SCANS=` id, when the current block has one.
    let mut explicit_scan: Option<u32> = None;
    let mut peaks: Vec<Peak> = Vec::new();
    // Indices into `out` of blocks awaiting an auto-assigned id, and the
    // set of ids taken explicitly somewhere in the file.
    let mut pending_auto: Vec<usize> = Vec::new();
    let mut explicit_ids: std::collections::HashSet<u32> = std::collections::HashSet::new();

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.eq_ignore_ascii_case("BEGIN IONS") {
            if in_ions {
                return Err(BioError::FastaParse {
                    msg: "nested BEGIN IONS".into(),
                    line: lineno,
                });
            }
            in_ions = true;
            title.clear();
            pepmass = 0.0;
            charge = 1;
            explicit_scan = None;
            peaks.clear();
            continue;
        }
        if line.eq_ignore_ascii_case("END IONS") {
            if !in_ions {
                return Err(BioError::FastaParse {
                    msg: "END IONS without BEGIN IONS".into(),
                    line: lineno,
                });
            }
            // Blocks without an explicit SCANS= get their id in the
            // post-parse pass below, once every explicit id is known.
            match explicit_scan {
                Some(id) => {
                    explicit_ids.insert(id);
                }
                None => pending_auto.push(out.len()),
            }
            let mut s = Spectrum::new(
                explicit_scan.unwrap_or(0),
                pepmass,
                charge,
                std::mem::take(&mut peaks),
            );
            s.title = std::mem::take(&mut title);
            out.push(s);
            in_ions = false;
            continue;
        }
        if !in_ions {
            // Global parameter lines (e.g. COM=, ITOL=) are legal; skip them.
            if line.contains('=') {
                continue;
            }
            return Err(BioError::FastaParse {
                msg: format!("unexpected line outside BEGIN/END IONS: {line:?}"),
                line: lineno,
            });
        }
        if let Some((key, value)) = line.split_once('=') {
            match key.to_ascii_uppercase().as_str() {
                "TITLE" => title = value.trim().to_string(),
                "PEPMASS" => {
                    let first = value.split_whitespace().next().unwrap_or("");
                    pepmass = first.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad PEPMASS {value:?}"),
                        line: lineno,
                    })?;
                }
                "CHARGE" => {
                    let v = value.trim();
                    // `2-` (or `-2`) is negative polarity, not charge 2:
                    // Spectrum has no polarity representation, so silently
                    // flipping the sign would corrupt downstream m/z → mass
                    // arithmetic. Reject it explicitly.
                    if v.contains('-') {
                        return Err(BioError::FastaParse {
                            msg: format!(
                                "negative-polarity CHARGE {value:?} is not supported \
                                 (only positive charge states can be represented)"
                            ),
                            line: lineno,
                        });
                    }
                    let v = v.trim_end_matches('+');
                    charge = v.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad CHARGE {value:?}"),
                        line: lineno,
                    })?;
                }
                "SCANS" => {
                    let scan: u32 = value.trim().parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad SCANS {value:?}"),
                        line: lineno,
                    })?;
                    explicit_scan = Some(scan);
                }
                _ => {} // RTINSECONDS etc.: ignored
            }
        } else {
            let mut it = line.split_whitespace();
            match (it.next(), it.next()) {
                (Some(mz), Some(inten)) => {
                    let mz: f64 = mz.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad peak m/z {mz:?}"),
                        line: lineno,
                    })?;
                    let inten: f32 = inten.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad peak intensity {inten:?}"),
                        line: lineno,
                    })?;
                    peaks.push(Peak::new(mz, inten));
                }
                (Some(mz), None) => {
                    // Intensity-less peaks are legal MGF; assume 1.0.
                    let mz: f64 = mz.parse().map_err(|_| BioError::FastaParse {
                        msg: format!("bad peak m/z {mz:?}"),
                        line: lineno,
                    })?;
                    peaks.push(Peak::new(mz, 1.0));
                }
                _ => unreachable!("split_whitespace on non-empty line yields at least one token"),
            }
        }
    }
    if in_ions {
        return Err(BioError::FastaParse {
            msg: "unterminated BEGIN IONS".into(),
            line: 0,
        });
    }

    // Post-parse pass: hand out auto ids from 0 upward, skipping every
    // explicit id anywhere in the file (earlier *or later* than the auto
    // block).
    let mut next: u64 = 0;
    for i in pending_auto {
        while next <= u64::from(u32::MAX) && explicit_ids.contains(&(next as u32)) {
            next += 1;
        }
        if next > u64::from(u32::MAX) {
            return Err(BioError::FastaParse {
                msg: "scan id space exhausted while auto-numbering".into(),
                line: 0,
            });
        }
        out[i].scan = next as u32;
        next += 1;
    }
    Ok(out)
}

/// Writes spectra as MGF.
pub fn write_mgf<W: Write>(writer: W, spectra: &[Spectrum]) -> Result<(), BioError> {
    let mut w = BufWriter::new(writer);
    for s in spectra {
        writeln!(w, "BEGIN IONS")?;
        if s.title.is_empty() {
            writeln!(w, "TITLE=scan={}", s.scan)?;
        } else {
            writeln!(w, "TITLE={}", s.title)?;
        }
        writeln!(w, "PEPMASS={:.5}", s.precursor_mz)?;
        writeln!(w, "CHARGE={}+", s.charge)?;
        writeln!(w, "SCANS={}", s.scan)?;
        for p in &s.peaks {
            writeln!(w, "{:.5} {:.2}", p.mz, p.intensity)?;
        }
        writeln!(w, "END IONS")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Spectrum> {
        let mut s = Spectrum::new(5, 503.1234, 2, vec![Peak::new(112.0872, 231.5)]);
        s.title = "my spectrum".into();
        vec![
            s,
            Spectrum::new(
                9,
                611.5,
                3,
                vec![Peak::new(201.1, 55.0), Peak::new(300.0, 5.0)],
            ),
        ]
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_mgf(&mut buf, &sample()).unwrap();
        let back = read_mgf(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].title, "my spectrum");
        assert_eq!(back[0].scan, 5);
        assert_eq!(back[0].charge, 2);
        assert!((back[0].precursor_mz - 503.1234).abs() < 1e-4);
        assert_eq!(back[1].peak_count(), 2);
    }

    #[test]
    fn charge_suffix_variants() {
        for (text, expect) in [("2+", 2u8), ("3", 3), ("1+", 1)] {
            let input = format!("BEGIN IONS\nPEPMASS=400\nCHARGE={text}\n100 1\nEND IONS\n");
            let s = read_mgf(input.as_bytes()).unwrap();
            assert_eq!(s[0].charge, expect, "{text}");
        }
    }

    #[test]
    fn pepmass_with_intensity_token() {
        let input = "BEGIN IONS\nPEPMASS=400.5 12345.0\n100 1\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert!((s[0].precursor_mz - 400.5).abs() < 1e-9);
    }

    #[test]
    fn intensity_less_peaks_get_one() {
        let input = "BEGIN IONS\nPEPMASS=400\n100.5\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!(s[0].peaks[0].intensity, 1.0);
    }

    #[test]
    fn global_params_skipped() {
        let input = "COM=run 1\nITOL=0.5\nBEGIN IONS\nPEPMASS=400\n100 1\nEND IONS\n";
        assert_eq!(read_mgf(input.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn structural_errors() {
        assert!(read_mgf("BEGIN IONS\nBEGIN IONS\n".as_bytes()).is_err());
        assert!(read_mgf("END IONS\n".as_bytes()).is_err());
        assert!(read_mgf("BEGIN IONS\nPEPMASS=400\n".as_bytes()).is_err());
        assert!(read_mgf("stray line\n".as_bytes()).is_err());
    }

    #[test]
    fn default_scan_numbers_increment() {
        let input = "BEGIN IONS\nPEPMASS=1\nEND IONS\nBEGIN IONS\nPEPMASS=2\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!((s[0].scan, s[1].scan), (0, 1));
    }

    #[test]
    fn mixed_explicit_and_auto_ids_never_collide() {
        // Mixed file: explicit ids 7 and 2; the auto-numbered blocks take
        // the lowest free ids (the old parser handed out ids from a counter
        // SCANS= never touched, colliding with explicit ids).
        let input = "BEGIN IONS\nPEPMASS=1\nSCANS=7\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=2\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=3\nSCANS=2\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=4\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        let scans: Vec<u32> = s.iter().map(|x| x.scan).collect();
        assert_eq!(scans, vec![7, 0, 2, 1]);
        let mut dedup = scans.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), scans.len(), "scan ids must be unique");
    }

    #[test]
    fn auto_block_before_explicit_zero_does_not_collide() {
        // The explicit id arrives *after* the auto block — auto assignment
        // must still avoid it (it happens in a post-parse pass).
        let input = "BEGIN IONS\nPEPMASS=1\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=2\nSCANS=0\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!((s[0].scan, s[1].scan), (1, 0));
    }

    #[test]
    fn auto_ids_not_wasted_on_explicit_blocks() {
        // An explicit low id does not burn an auto id: autos fill the
        // lowest ids not taken explicitly.
        let input = "BEGIN IONS\nPEPMASS=1\nSCANS=0\nEND IONS\n\
                     BEGIN IONS\nPEPMASS=2\nEND IONS\n";
        let s = read_mgf(input.as_bytes()).unwrap();
        assert_eq!((s[0].scan, s[1].scan), (0, 1));
    }

    #[test]
    fn negative_polarity_charge_rejected() {
        for text in ["2-", "-2", "1-"] {
            let input = format!("BEGIN IONS\nPEPMASS=400\nCHARGE={text}\n100 1\nEND IONS\n");
            let err = read_mgf(input.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains("negative-polarity"),
                "{text}: {err}"
            );
        }
    }
}
