//! Spectra-level grouping — the paper's §III-C future direction.
//!
//! Algorithm 1 groups by *sequence* similarity, which under-estimates how
//! different a heavily modified variant's spectrum is ("the modified variant
//! theoretical spectra may be very different if they have multiple
//! modifications or even single modification at or near either N- or
//! C-terminus"). The paper suggests clustering "at spectra level instead of
//! peptide sequence level" as future work; this module implements that:
//! greedy grouping (same shape as Algorithm 1, so the partitioner is
//! unchanged) with similarity measured as **quantized-bin Jaccard overlap**
//! between theoretical spectra — exactly the quantity shared-peak filtration
//! responds to.
//!
//! Because the measure operates on the same bins the index queries, two
//! peptides land in one group *iff* their indexed spectra genuinely collide
//! with the same queries — sequence similarity is only a proxy for that.

use crate::grouping::Grouping;
use lbe_bio::mods::{ModForm, ModSpec};
use lbe_bio::peptide::PeptideDb;
use lbe_index::SlmConfig;
use lbe_spectra::theo::TheoSpectrum;

/// Parameters for spectra-level grouping.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralGroupingParams {
    /// Minimum Jaccard overlap of quantized fragment bins for a spectrum to
    /// join the current group's seed.
    pub min_jaccard: f64,
    /// Maximum group size (as in Algorithm 1).
    pub gsize: usize,
    /// Quantization taken from the index configuration so grouping and
    /// filtration agree on what "shared" means.
    pub slm: SlmConfig,
}

impl Default for SpectralGroupingParams {
    fn default() -> Self {
        SpectralGroupingParams {
            min_jaccard: 0.5,
            gsize: 20,
            slm: SlmConfig::default(),
        }
    }
}

/// Quantized fragment-bin set of one peptide's *unmodified* theoretical
/// spectrum (sorted, deduplicated).
fn bin_set(seq: &[u8], cfg: &SlmConfig) -> Vec<u32> {
    let theo =
        TheoSpectrum::from_sequence(seq, &ModForm::unmodified(), &ModSpec::none(), &cfg.theo);
    let mut bins: Vec<u32> = theo
        .fragment_mzs
        .iter()
        .filter_map(|&mz| cfg.bin_of(mz))
        .collect();
    bins.sort_unstable();
    bins.dedup();
    bins
}

/// Jaccard overlap of two sorted bin sets.
pub fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Groups peptides by theoretical-spectrum similarity.
///
/// Traversal order is the same sort as Algorithm 1 (length, then lex) so
/// near-identical sequences — which necessarily have near-identical spectra
/// — are adjacent and the greedy pass finds them; the *admission test* is
/// spectral, so sequence-similar pairs whose spectra diverge are split.
pub fn group_spectra(db: &PeptideDb, params: &SpectralGroupingParams) -> Grouping {
    assert!(params.gsize >= 1, "gsize must be at least 1");
    assert!((0.0..=1.0).contains(&params.min_jaccard));
    let mut order: Vec<u32> = (0..db.len() as u32).collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (db.get(a), db.get(b));
        pa.len()
            .cmp(&pb.len())
            .then_with(|| pa.sequence().cmp(pb.sequence()))
    });

    let mut group_sizes: Vec<u32> = Vec::new();
    if order.is_empty() {
        return Grouping { order, group_sizes };
    }
    let mut seed_bins = bin_set(db.get(order[0]).sequence(), &params.slm);
    group_sizes.push(1);
    for &id in &order[1..] {
        let bins = bin_set(db.get(id).sequence(), &params.slm);
        let current = group_sizes.last_mut().expect("at least one group");
        if *current as usize >= params.gsize || jaccard(&seed_bins, &bins) < params.min_jaccard {
            seed_bins = bins;
            group_sizes.push(1);
        } else {
            *current += 1;
        }
    }
    Grouping { order, group_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbe_bio::peptide::Peptide;

    fn db(seqs: &[&str]) -> PeptideDb {
        PeptideDb::from_vec(
            seqs.iter()
                .map(|s| Peptide::new(s.as_bytes(), 0, 0).unwrap())
                .collect(),
        )
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[1], &[]), 0.0);
    }

    #[test]
    fn identical_spectra_grouped() {
        // I and L are isobaric: identical spectra despite different sequences.
        let d = db(&["ELVISLIVESK", "ELVISLIVESK", "ELVLSLLVESK"]);
        let g = group_spectra(&d, &SpectralGroupingParams::default());
        g.validate().unwrap();
        assert_eq!(g.num_groups(), 1, "{:?}", g.group_sizes);
    }

    #[test]
    fn dissimilar_spectra_split() {
        let d = db(&["GGGGGGK", "WWYYFFK"]);
        let g = group_spectra(&d, &SpectralGroupingParams::default());
        assert_eq!(g.num_groups(), 2);
    }

    #[test]
    fn one_substitution_costs_half_the_bins() {
        // A single substitution changes every b ion past it and every y ion
        // covering it — together exactly half the fragments, wherever it
        // sits. Jaccard of the bin sets is therefore ≈ (n/2)/(3n/2) = 1/3.
        for (a, b) in [
            (&b"AAAAGAAAK"[..], &b"AAAAWAAAK"[..]), // mid
            (&b"GAAAAAAAK"[..], &b"WAAAAAAAK"[..]), // N-terminal
        ] {
            let j = jaccard(
                &bin_set(a, &SlmConfig::default()),
                &bin_set(b, &SlmConfig::default()),
            );
            assert!((0.2..0.5).contains(&j), "jaccard {j} for {a:?} vs {b:?}");
        }
    }

    #[test]
    fn spectral_criterion_stricter_than_sequence() {
        // SAMPLEK vs SAMPLER: edit distance 1 — Algorithm 1 (d = 2) groups
        // them. Their spectra share only the b-series (y's all shift), so
        // Jaccard ≈ 6/20 < 0.5 and the spectral grouping splits them:
        // exactly the refinement the paper's future-work remark is after.
        let d = db(&["SAMPLEK", "SAMPLER"]);
        let seq_g = crate::grouping::group_peptides(
            &d,
            &crate::grouping::GroupingParams {
                criterion: crate::grouping::GroupingCriterion::Absolute { d: 2 },
                gsize: 20,
            },
        );
        assert_eq!(seq_g.num_groups(), 1);
        let spec_g = group_spectra(&d, &SpectralGroupingParams::default());
        assert_eq!(spec_g.num_groups(), 2);
    }

    #[test]
    fn gsize_respected() {
        let seqs: Vec<String> = (0..9).map(|_| "SAMPLEK".to_string()).collect();
        let refs: Vec<&str> = seqs.iter().map(String::as_str).collect();
        let g = group_spectra(
            &db(&refs),
            &SpectralGroupingParams {
                gsize: 4,
                ..Default::default()
            },
        );
        g.validate().unwrap();
        assert!(g.group_sizes.iter().all(|&s| s <= 4));
    }

    #[test]
    fn threshold_one_requires_identity() {
        let d = db(&["SAMPLEK", "SAMPLER"]);
        let g = group_spectra(
            &d,
            &SpectralGroupingParams {
                min_jaccard: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(g.num_groups(), 2);
    }

    #[test]
    fn threshold_zero_groups_everything_up_to_gsize() {
        let d = db(&["GGGGGGK", "WWYYFFK", "PEPTIDEK"]);
        let g = group_spectra(
            &d,
            &SpectralGroupingParams {
                min_jaccard: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(g.num_groups(), 1);
    }

    #[test]
    fn empty_db() {
        let g = group_spectra(&PeptideDb::new(), &SpectralGroupingParams::default());
        g.validate().unwrap();
        assert_eq!(g.num_groups(), 0);
    }

    #[test]
    fn output_partitionable() {
        use crate::partition::{partition_groups, PartitionPolicy};
        let d = db(&[
            "ELVISLIVESK",
            "ELVLSLLVESK",
            "GGGGGGK",
            "PEPTIDEK",
            "PEPTIDER",
        ]);
        let g = group_spectra(&d, &SpectralGroupingParams::default());
        let p = partition_groups(&g, 3, PartitionPolicy::Cyclic);
        p.validate(5).unwrap();
    }
}
