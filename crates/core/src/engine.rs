//! Distributed index construction and querying (§III-D/E, Fig. 3 and 4).
//!
//! The SPMD program each rank executes:
//!
//! 1. read + preprocess the query spectra (every rank, as in the paper);
//! 2. extract its peptide partition from the clustered database;
//! 3. build its *partial* SLM index; the master additionally builds the
//!    mapping table (workers "discard their partial peptide indices");
//! 4. barrier — the paper times querying separately from construction;
//! 5. search every query against the partial index, advancing the virtual
//!    clock through [`SearchCostModel`];
//! 6. send per-query candidate lists (virtual = local indices) to the
//!    master, which maps them to original peptide ids in O(1) each via the
//!    [`crate::mapping::MappingTable`] and merges top-k.
//!
//! All figures of the paper are measurements of this program under varying
//! `(policy, ranks, index size)` — see `lbe-bench`.

use crate::grouping::Grouping;
use crate::mapping::MappingTable;
use crate::partition::{partition_groups, Partition, PartitionPolicy};
use lbe_bio::mods::ModSpec;
use lbe_bio::peptide::{Peptide, PeptideDb};
use lbe_cluster::sim::ImbalanceSummary;
use lbe_cluster::{Cluster, ClusterConfig, CommError, Communicator};
use lbe_index::footprint::MemoryFootprint;
use lbe_index::query::{Psm, QueryStats, Searcher};
use lbe_index::{IndexBuilder, SlmConfig};
use lbe_spectra::spectrum::Spectrum;

/// Per-unit costs of the parallel phases (drive the virtual clock).
///
/// Absolute values are calibrated to commodity ~2019 Xeon cores so the
/// figure harness lands in the same order of magnitude as the paper; every
/// *comparison* in the evaluation is a ratio, so only relative magnitudes
/// matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchCostModel {
    /// Per posting scanned during shared-peak counting.
    pub per_posting_s: f64,
    /// Per posting *skipped* by the banded kernel's precursor filter — the
    /// amortized binary-search cost of jumping over an out-of-window run
    /// instead of scanning it. Two orders of magnitude below
    /// `per_posting_s`: skipping is O(log run) pointer arithmetic per bin,
    /// spread over the whole run.
    pub per_posting_skip_s: f64,
    /// Per ion-bin lookup.
    pub per_bin_s: f64,
    /// Per bin the fragment-level band dismissed with its O(1) endpoint
    /// test — cheaper than a real bin visit (`per_bin_s`): two posting
    /// loads and two compares, no binary search, no posting scan.
    pub per_bin_pruned_s: f64,
    /// Per candidate PSM that passes filtration — this is the full
    /// spectrum-to-spectrum comparison the index exists to minimize
    /// ("computationally expensive", §I), so it dominates the per-query
    /// cost and is what the paper's load imbalance is made of.
    pub per_candidate_s: f64,
    /// Fixed overhead per query spectrum.
    pub per_query_s: f64,
    /// Index construction cost per ion.
    pub per_ion_build_s: f64,
    /// Partition extraction cost per database peptide (each rank scans the
    /// clustered database once).
    pub per_peptide_extract_s: f64,
}

impl Default for SearchCostModel {
    fn default() -> Self {
        SearchCostModel {
            per_posting_s: 1.5e-9,
            per_posting_skip_s: 1.5e-11,
            per_bin_s: 2.0e-9,
            per_bin_pruned_s: 5.0e-10,
            per_candidate_s: 1.0e-6,
            per_query_s: 20e-6,
            per_ion_build_s: 12e-9,
            per_peptide_extract_s: 3e-9,
        }
    }
}

impl SearchCostModel {
    /// Virtual seconds of one query's search work.
    pub fn query_seconds(&self, stats: &QueryStats) -> f64 {
        // Bins the fragment-level band pruned cost `per_bin_pruned_s` each
        // instead of a full bin visit (`bins_pruned_by_band` is a subset of
        // `bins_touched`; the saturating_sub guards against degenerate
        // hand-assembled stats).
        let full_bins = stats.bins_touched.saturating_sub(stats.bins_pruned_by_band);
        self.per_query_s
            + full_bins as f64 * self.per_bin_s
            + stats.bins_pruned_by_band as f64 * self.per_bin_pruned_s
            + stats.postings_scanned as f64 * self.per_posting_s
            + stats.postings_skipped_by_band as f64 * self.per_posting_skip_s
            + stats.candidates as f64 * self.per_candidate_s
    }

    /// Virtual seconds to build an index of `ions` postings.
    pub fn build_seconds(&self, ions: usize) -> f64 {
        ions as f64 * self.per_ion_build_s
    }

    /// Scales the *index-size-linear* cost terms (posting scans, bin
    /// lookups, index build) by `factor`, leaving per-query and
    /// per-candidate costs alone.
    ///
    /// Used by the figure harness: when an experiment runs on an index
    /// `factor×` smaller than the paper's, multiplying these terms by
    /// `factor` restores the paper-scale per-query work profile — and with
    /// it the load-imbalance signal, which lives in how posting-scan work is
    /// distributed across ranks (the "data sketch" of §III).
    pub fn scaled_for_index(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite());
        self.per_posting_s *= factor;
        // Skipped-posting counts grow with bin occupancy just like scanned
        // ones, so the skip term scales with index size too.
        self.per_posting_skip_s *= factor;
        self.per_ion_build_s *= factor;
        // Candidate counts are also ~linear in index size (the paper's
        // 73,723 cPSMs/query on a 49.45M index ≈ a constant ~1,490
        // candidates per query per million spectra), so the scoring term
        // scales the same way.
        self.per_candidate_s *= factor;
        // per_bin_s / per_bin_pruned_s are NOT scaled: bins touched per
        // query depend only on peak count × tolerance window, not on index
        // size.
        self
    }
}

/// Costs of the serial (non-scaling) phases — the Amdahl term of Figs. 9/10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerialCostModel {
    /// Query-file read + preprocessing per spectrum (every rank pays it —
    /// it does not shrink with p).
    pub per_spectrum_io_s: f64,
    /// Algorithm 1 grouping cost per peptide (preprocessing, master-side).
    pub per_peptide_grouping_s: f64,
    /// Master-side merge cost per received PSM.
    pub per_psm_merge_s: f64,
}

impl Default for SerialCostModel {
    fn default() -> Self {
        SerialCostModel {
            per_spectrum_io_s: 120e-6,
            per_peptide_grouping_s: 250e-9,
            per_psm_merge_s: 30e-9,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Index/search settings.
    pub slm: SlmConfig,
    /// Variable modifications to index.
    pub modspec: ModSpec,
    /// Data distribution policy.
    pub policy: PartitionPolicy,
    /// Parallel-phase cost model.
    pub cost: SearchCostModel,
    /// Serial-phase cost model.
    pub serial: SerialCostModel,
    /// Intra-rank threads (the paper's §VIII *hybrid OpenMP+MPI* direction):
    /// each rank dispatches its query batch through the shared
    /// work-stealing pool across this many threads (and builds its partial
    /// index with them); the rank's virtual query time is its slowest
    /// thread's under greedy least-loaded assignment. 1 = the paper's
    /// flat-MPI configuration.
    pub threads_per_rank: usize,
    /// Relative speed of each rank (1.0 = nominal), for **heterogeneous**
    /// clusters (§VIII). Compute on rank `m` takes `work / rank_speeds[m]`
    /// virtual seconds. `None` = homogeneous.
    pub rank_speeds: Option<Vec<f64>>,
    /// When `true` and `rank_speeds` is set, partition peptide counts
    /// proportionally to speed ([`crate::partition::partition_weighted_cyclic`])
    /// — the paper's "load-predicting model". When `false`, the configured
    /// policy is used unchanged (exposing the imbalance mis-prediction
    /// causes).
    pub weight_partition_by_speed: bool,
    /// When set, each rank **spills its partial index to disk** after
    /// construction (one v2 `LBESLM2` file per rank under this directory)
    /// and reopens it arena-backed for the query phase — the paper's §II-B
    /// "stored on disks when not in use" applied to `simulate`, whose
    /// owned per-rank indexes otherwise hold the whole database in memory
    /// simultaneously. Results are bit-identical to the in-memory run
    /// (tested); spill files are left behind for inspection/reuse.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Posting-scan mode for every rank's query phase:
    /// [`lbe_index::ScanMode::Auto`] (the default) lets closed searches
    /// take the banded precursor-filtered kernel on mass-sorted indexes;
    /// [`lbe_index::ScanMode::FullScan`] forces whole-bin scans (A/B
    /// comparisons; findings are identical either way).
    pub scan_mode: lbe_index::ScanMode,
    /// When set, each rank **streams its peptide partition** from this
    /// peptide-per-record FASTA file (record `i` = peptide id `i`, the
    /// layout of every `lbe digest`/`cluster-db` artifact) instead of
    /// cloning it out of the shared in-memory database — closing ROADMAP's
    /// "the FASTA/db pass is still whole-file per rank": a rank's resident
    /// peptide storage is its own partition, not a second copy carved from
    /// a whole-proteome pass. The file must contain the same records the
    /// `db` passed to [`run_distributed_search`] was loaded from; results
    /// are bit-identical to the in-memory extraction (tested). Mismatched
    /// files are environment errors and panic with context, like
    /// [`EngineConfig::spill_dir`].
    pub stream_db_from: Option<std::path::PathBuf>,
}

impl EngineConfig {
    /// Paper-default settings with the given policy.
    pub fn with_policy(policy: PartitionPolicy) -> Self {
        EngineConfig {
            slm: SlmConfig::default(),
            modspec: ModSpec::none(),
            policy,
            cost: SearchCostModel::default(),
            serial: SerialCostModel::default(),
            threads_per_rank: 1,
            rank_speeds: None,
            weight_partition_by_speed: false,
            scan_mode: lbe_index::ScanMode::Auto,
            spill_dir: None,
            stream_db_from: None,
        }
    }

    /// The speed factor of rank `me` (1.0 when homogeneous).
    fn speed_of(&self, me: usize) -> f64 {
        self.rank_speeds.as_ref().map(|v| v[me]).unwrap_or(1.0)
    }
}

/// A PSM with the *global* (original database) peptide id, as produced by
/// the master after mapping-table translation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalPsm {
    /// Original peptide id in the input database.
    pub peptide: u32,
    /// Modform ordinal.
    pub modform: u16,
    /// Shared peak count.
    pub shared_peaks: u16,
    /// Score (comparable within one query).
    pub score: f32,
    /// Rank that produced the match.
    pub rank: u16,
}

/// What one rank reports to the master (and to the caller).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RankReturn {
    pub(crate) peptides: usize,
    pub(crate) spectra: usize,
    pub(crate) ions: usize,
    pub(crate) build_time: f64,
    pub(crate) query_time: f64,
    pub(crate) stats: QueryStats,
    pub(crate) footprint: MemoryFootprint,
}

/// `RankReturn` flattened into `Wire`-implementing tuples so real backends
/// can gather it at rank 0. (The `Wire` trait lives in `lbe-cluster`, which
/// cannot name index types — hence tuples at the boundary instead of trait
/// impls on foreign structs.)
pub(crate) type RankReturnWire = (
    (usize, usize, usize),          // peptides, spectra, ions
    (f64, f64),                     // build_time, query_time
    (u64, u64, u64, u64, u64, u64), // QueryStats fields
    (usize, usize, usize, usize),   // MemoryFootprint fields
);

impl RankReturn {
    pub(crate) fn to_wire(&self) -> RankReturnWire {
        (
            (self.peptides, self.spectra, self.ions),
            (self.build_time, self.query_time),
            (
                self.stats.peaks,
                self.stats.bins_touched,
                self.stats.postings_scanned,
                self.stats.postings_skipped_by_band,
                self.stats.bins_pruned_by_band,
                self.stats.candidates,
            ),
            (
                self.footprint.entries,
                self.footprint.bin_offsets,
                self.footprint.postings,
                self.footprint.mapping_table,
            ),
        )
    }

    pub(crate) fn from_wire(w: RankReturnWire) -> RankReturn {
        let ((peptides, spectra, ions), (build_time, query_time), s, f) = w;
        RankReturn {
            peptides,
            spectra,
            ions,
            build_time,
            query_time,
            stats: QueryStats {
                peaks: s.0,
                bins_touched: s.1,
                postings_scanned: s.2,
                postings_skipped_by_band: s.3,
                bins_pruned_by_band: s.4,
                candidates: s.5,
            },
            footprint: MemoryFootprint {
                entries: f.0,
                bin_offsets: f.1,
                postings: f.2,
                mapping_table: f.3,
            },
        }
    }
}

/// What supervised search did about failed ranks. `ranks_lost` empty means
/// the run was supervised but nothing died.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Ranks whose workers died (or became unreachable after the retry
    /// policy was exhausted) during the run, ascending.
    pub ranks_lost: Vec<usize>,
    /// Queries the master re-executed on behalf of lost ranks
    /// (`ranks_lost.len() × num_queries`).
    pub queries_reexecuted: usize,
    /// Wall-clock seconds rank 0 spent re-executing lost shares.
    pub recovery_seconds: f64,
}

/// Full report of one distributed run.
#[derive(Debug, Clone)]
pub struct DistributedSearchReport {
    /// Number of ranks.
    pub ranks: usize,
    /// Policy used.
    pub policy: PartitionPolicy,
    /// Peptides per rank.
    pub partition_sizes: Vec<usize>,
    /// Indexed theoretical spectra per rank.
    pub index_spectra: Vec<usize>,
    /// Indexed ions per rank.
    pub index_ions: Vec<usize>,
    /// Per-rank index footprints (master's includes the mapping table).
    pub footprints: Vec<MemoryFootprint>,
    /// Mapping-table bytes (master only).
    pub mapping_table_bytes: usize,
    /// Per-rank virtual index-build times.
    pub build_times: Vec<f64>,
    /// Per-rank virtual query times — Fig. 6/7/8's quantity.
    pub rank_query_times: Vec<f64>,
    /// Per-rank final clocks (total execution) — Fig. 9/10's quantity.
    pub total_times: Vec<f64>,
    /// Modelled serial preprocessing seconds included in every rank's clock.
    pub serial_seconds: f64,
    /// Imbalance summary over `rank_query_times` (Eq. 1).
    pub imbalance: ImbalanceSummary,
    /// Total candidate PSMs across ranks (the paper's cPSM count).
    pub total_candidates: u64,
    /// Per-rank work counters.
    pub per_rank_stats: Vec<QueryStats>,
    /// Master-merged top-k PSMs per query, global peptide ids.
    pub psms: Vec<Vec<GlobalPsm>>,
    /// `Some` when the run was supervised (rank-failure recovery armed);
    /// `None` for unsupervised runs. Supervision never changes `psms`: lost
    /// shares are re-executed deterministically, so the merged results are
    /// byte-identical to a failure-free run.
    pub recovery: Option<RecoveryReport>,
}

impl DistributedSearchReport {
    /// Query-phase makespan (the paper's "Query Time").
    pub fn query_time(&self) -> f64 {
        self.rank_query_times.iter().copied().fold(0.0, f64::max)
    }

    /// Total-execution makespan (the paper's "Execution Time").
    pub fn execution_time(&self) -> f64 {
        self.total_times.iter().copied().fold(0.0, f64::max)
    }

    /// Mean candidate PSMs per query.
    pub fn cpsms_per_query(&self) -> f64 {
        if self.psms.is_empty() {
            0.0
        } else {
            self.total_candidates as f64 / self.psms.len() as f64
        }
    }
}

/// Runs the full distributed pipeline on `ranks` simulated machines.
///
/// `grouping` is Algorithm 1's output over `db` (serial preprocessing, per
/// the paper's workflow); `queries` are preprocessed spectra searched by
/// every rank against its partition.
pub fn run_distributed_search(
    db: &PeptideDb,
    grouping: &Grouping,
    queries: &[Spectrum],
    cfg: &EngineConfig,
    ranks: usize,
) -> DistributedSearchReport {
    let partition = make_partition(grouping, cfg, ranks);
    let mapping = MappingTable::from_partition(&partition);
    let serial_seconds = serial_seconds(db, queries, cfg);

    let cluster = Cluster::new(ClusterConfig::new(ranks));
    let outcome = cluster.run(|comm| {
        rank_program(comm, db, &partition, &mapping, queries, cfg, serial_seconds)
            .unwrap_or_else(|e| panic!("{e}"))
    });

    assemble_report(
        outcome,
        &partition,
        &mapping,
        cfg,
        serial_seconds,
        queries.len(),
    )
}

/// The data distribution every rank (and the report assembly) agrees on.
/// Deterministic in `(grouping, cfg, ranks)`, so multi-process backends can
/// compute it independently per rank and still agree bit-for-bit.
pub(crate) fn make_partition(grouping: &Grouping, cfg: &EngineConfig, ranks: usize) -> Partition {
    if let Some(speeds) = &cfg.rank_speeds {
        assert_eq!(speeds.len(), ranks, "rank_speeds must cover every rank");
    }
    assert!(cfg.threads_per_rank >= 1, "threads_per_rank must be >= 1");
    match (&cfg.rank_speeds, cfg.weight_partition_by_speed) {
        (Some(speeds), true) => crate::partition::partition_weighted_cyclic(grouping, speeds),
        _ => partition_groups(grouping, ranks, cfg.policy),
    }
}

/// Modelled serial preprocessing seconds (query I/O + grouping), charged to
/// every rank's clock.
pub(crate) fn serial_seconds(db: &PeptideDb, queries: &[Spectrum], cfg: &EngineConfig) -> f64 {
    cfg.serial.per_spectrum_io_s * queries.len() as f64
        + cfg.serial.per_peptide_grouping_s * db.len() as f64
}

/// One PSM on the cluster wire: `(local peptide id, modform, shared_peaks,
/// score)`. Entry ids are index-internal and never travel.
pub(crate) type PsmWire = (u32, u16, u16, f32);

fn psm_to_wire(p: &Psm) -> PsmWire {
    (p.peptide, p.modform, p.shared_peaks, p.score)
}

/// The SPMD body executed by each rank.
///
/// Backend-agnostic: the same program runs on the threaded simulator (via
/// [`run_distributed_search`]) and on real TCP clusters (via
/// [`crate::dist`]). Communication failures — a dead peer, a timeout, a
/// mis-typed exchange — surface as [`CommError`] with rank/tag context
/// instead of panicking inside the cluster runtime.
#[allow(clippy::type_complexity)] // (rank counters, rank-0-only merged PSMs)
pub(crate) fn rank_program(
    comm: &mut Communicator,
    db: &PeptideDb,
    partition: &Partition,
    mapping: &MappingTable,
    queries: &[Spectrum],
    cfg: &EngineConfig,
    serial_seconds: f64,
) -> Result<(RankReturn, Option<Vec<Vec<GlobalPsm>>>), CommError> {
    let me = comm.rank();
    let speed = cfg.speed_of(me);

    // 1. Serial preprocessing: grouping happened upstream; every rank reads
    //    and preprocesses the query file (does not scale with p).
    comm.compute(serial_seconds / speed);

    // 2. Extract this rank's partition from the clustered database: one
    //    pass over all N peptides either way (the virtual clock charges
    //    it), but with `stream_db_from` the pass is a streaming read of
    //    the on-disk FASTA that keeps only this rank's records — no second
    //    in-memory copy of peptides that belong to other ranks.
    comm.compute(cfg.cost.per_peptide_extract_s * db.len() as f64 / speed);
    let local_db = extract_local_db(db, partition, me, cfg);

    // 3. Build the partial SLM index (and the mapping table on the master —
    //    its cost is one pass over N ids, folded into extraction above).
    //    Hybrid mode builds with its intra-rank threads too (the two-pass
    //    CSR build is embarrassingly parallel per peptide range); the
    //    virtual clock still charges the cost model's per-ion total, since
    //    the figures time the flat-MPI build.
    let t_build0 = comm.now();
    let mut builder = IndexBuilder::new(cfg.slm.clone(), cfg.modspec.clone());
    let index = builder.build_parallel(&local_db, cfg.threads_per_rank);
    comm.compute(cfg.cost.build_seconds(index.num_ions()) / speed);
    let build_time = comm.now() - t_build0;

    // Optional disk spill: write the freshly built index as a v2 container,
    // drop the owned arrays, and reopen arena-backed. The rank then
    // searches views into one load-time buffer instead of three owned Vecs
    // — and the file stays behind, so a production deployment can skip the
    // build entirely on the next run. I/O failures here are programming/
    // environment errors (unwritable spill_dir), not data-dependent, so
    // they surface as a panic with context rather than silently degrading
    // to the in-memory path.
    let index = match &cfg.spill_dir {
        None => index,
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create spill dir {}: {e}", dir.display()));
            let path = dir.join(format!("rank{me:04}.slm2"));
            lbe_index::write_index_path(&path, &index).unwrap_or_else(|e| {
                panic!("cannot spill rank {me} index to {}: {e}", path.display())
            });
            drop(index);
            // This process wrote the file one line above: checksums still
            // verify it, but the full O(ions) validation scan is skipped.
            lbe_index::read_index_path_with(&path, &lbe_index::ReadOptions::trusted())
                .unwrap_or_else(|e| panic!("cannot reopen spilled index {}: {e}", path.display()))
        }
    };

    let mut footprint = MemoryFootprint::of_index(&index);
    if comm.is_master() {
        footprint = footprint.with_mapping_table(mapping.len());
    }

    // 4. Construction/query separation point.
    comm.try_barrier()?;

    // 5. Search every query against the partial index. With
    //    `threads_per_rank > 1` (hybrid mode, the paper's §VIII hybrid
    //    OpenMP+MPI direction), the batch is dispatched through the real
    //    work-stealing pool — actual OS threads do the searching, and
    //    results stay bit-identical to the sequential path. The *virtual
    //    clock* stays cost-model-driven (the cluster sim never reads wall
    //    clocks): per-query costs are assigned greedily to the
    //    least-loaded virtual thread, which is what dynamic block
    //    scheduling converges to, and the rank finishes with its slowest
    //    thread.
    let t_q0 = comm.now();
    let threads = cfg.threads_per_rank;
    let (results, totals) = if threads > 1 {
        lbe_index::search_batch_parallel_with_mode(&index, queries, threads, cfg.scan_mode)
    } else {
        Searcher::new(&index).search_batch_with_mode(queries, cfg.scan_mode)
    };
    let mut thread_times = vec![0.0f64; threads];
    for r in &results {
        let slot = thread_times
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
            .expect("threads >= 1");
        *slot += cfg.cost.query_seconds(&r.stats) / speed;
    }
    let local_psms: Vec<Vec<Psm>> = results.into_iter().map(|r| r.psms).collect();
    comm.compute(thread_times.iter().copied().fold(0.0, f64::max));
    let query_time = comm.now() - t_q0;

    // 6. Return virtual indices to the master; O(1) mapping + merge there.
    let psm_count: usize = local_psms.iter().map(Vec::len).sum();
    let wire: Vec<Vec<PsmWire>> = local_psms
        .iter()
        .map(|q| q.iter().map(psm_to_wire).collect())
        .collect();
    let gathered = comm.try_gather(0, wire, psm_count * std::mem::size_of::<Psm>())?;

    let merged = gathered.map(|per_rank| {
        let total_psms: usize = per_rank.iter().flat_map(|r| r.iter().map(Vec::len)).sum();
        comm.compute(cfg.serial.per_psm_merge_s * total_psms as f64 / speed);
        merge_results(per_rank, mapping, cfg.slm.top_k, queries.len())
    });

    Ok((
        RankReturn {
            peptides: local_db.len(),
            spectra: index.num_spectra(),
            ions: index.num_ions(),
            build_time,
            query_time,
            stats: totals,
            footprint,
        },
        merged,
    ))
}

/// Materializes rank `me`'s peptide partition: cloned out of the shared
/// in-memory database, or streamed from disk when `stream_db_from` is set.
/// Partition order is preserved either way, so local ids (and the mapping
/// table built from them) are identical across extraction paths.
pub(crate) fn extract_local_db(
    db: &PeptideDb,
    partition: &Partition,
    me: usize,
    cfg: &EngineConfig,
) -> PeptideDb {
    match &cfg.stream_db_from {
        None => partition
            .rank(me)
            .iter()
            .map(|&gid| db.get(gid).clone())
            .collect::<Vec<Peptide>>()
            .into_iter()
            .collect(),
        Some(path) => stream_partition_db(path, partition.rank(me), me),
    }
}

/// Streams one rank's peptide partition out of a peptide-per-record FASTA
/// file: record `gid` holds peptide id `gid` (the `lbe` CLI artifact
/// layout). Only this rank's `|partition|` peptides are ever resident; the
/// rest of the file flows through the streaming reader one record at a
/// time. The result preserves partition order, so local ids (and with them
/// the mapping table) are identical to the in-memory extraction.
///
/// I/O or content mismatches here are environment errors (wrong/modified
/// file), not data-dependent conditions, so — like `spill_dir` failures —
/// they panic with context rather than silently degrading.
fn stream_partition_db(path: &std::path::Path, rank_gids: &[u32], me: usize) -> PeptideDb {
    use std::collections::HashMap;
    let slot_of: HashMap<u32, usize> = rank_gids
        .iter()
        .enumerate()
        .map(|(slot, &gid)| (gid, slot))
        .collect();
    let mut slots: Vec<Option<Peptide>> = vec![None; rank_gids.len()];
    let reader = lbe_bio::fasta::FastaReader::open(path)
        .unwrap_or_else(|e| panic!("rank {me}: cannot stream db from {}: {e}", path.display()));
    let mut filled = 0usize;
    for (gid, record) in reader.enumerate() {
        let record = record
            .unwrap_or_else(|e| panic!("rank {me}: cannot stream db from {}: {e}", path.display()));
        let Some(&slot) = (gid <= u32::MAX as usize)
            .then(|| slot_of.get(&(gid as u32)))
            .flatten()
        else {
            continue; // another rank's peptide: never materialized
        };
        let p = Peptide::new(&record.sequence, gid as u32, 0).unwrap_or_else(|| {
            panic!(
                "rank {me}: record {gid} ({}) in {} contains non-standard residues",
                record.accession(),
                path.display()
            )
        });
        slots[slot] = Some(p);
        filled += 1;
    }
    assert_eq!(
        filled,
        rank_gids.len(),
        "rank {me}: {} does not cover this rank's partition ({filled} of {} peptide ids found)",
        path.display(),
        rank_gids.len()
    );
    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect::<Vec<Peptide>>()
        .into_iter()
        .collect()
}

/// Master-side merge: translate local ids to global, combine ranks, keep
/// top-k per query.
fn merge_results(
    per_rank: Vec<Vec<Vec<PsmWire>>>,
    mapping: &MappingTable,
    top_k: usize,
    num_queries: usize,
) -> Vec<Vec<GlobalPsm>> {
    let mut merged: Vec<Vec<GlobalPsm>> = vec![Vec::new(); num_queries];
    for (rank, rank_results) in per_rank.into_iter().enumerate() {
        assert_eq!(
            rank_results.len(),
            num_queries,
            "rank {rank} returned wrong query count"
        );
        for (qi, psms) in rank_results.into_iter().enumerate() {
            for (peptide, modform, shared_peaks, score) in psms {
                merged[qi].push(GlobalPsm {
                    peptide: mapping.global_of(rank, peptide),
                    modform,
                    shared_peaks,
                    score,
                    rank: rank as u16,
                });
            }
        }
    }
    for q in &mut merged {
        // The shared ranking order (see lbe_index::query::rank_key_cmp):
        // total (NaN-proof), tie-broken by (peptide, modform) — never
        // entry ids, so the builder's mass renumbering is invisible in
        // merged reports.
        q.sort_by(|a, b| {
            lbe_index::query::rank_key_cmp(
                (a.score, a.peptide, a.modform),
                (b.score, b.peptide, b.modform),
            )
        });
        q.truncate(top_k);
    }
    merged
}

/// Re-executes rank `rank`'s entire share (extract → build → search) on the
/// calling process. Used by supervised search to recover a dead worker's
/// results: every output here depends only on `(db, partition, rank,
/// queries, cfg)`, so the recovered PSMs are byte-identical to what the
/// lost rank would have sent. Times are wall-clock (the re-execution really
/// happens); the spill path is skipped — the recovered index is transient.
pub(crate) fn execute_rank_share(
    db: &PeptideDb,
    partition: &Partition,
    rank: usize,
    queries: &[Spectrum],
    cfg: &EngineConfig,
) -> (RankReturn, Vec<Vec<PsmWire>>) {
    let t0 = std::time::Instant::now();
    let local_db = extract_local_db(db, partition, rank, cfg);
    let mut builder = IndexBuilder::new(cfg.slm.clone(), cfg.modspec.clone());
    let index = builder.build_parallel(&local_db, cfg.threads_per_rank);
    let build_time = t0.elapsed().as_secs_f64();
    let footprint = MemoryFootprint::of_index(&index);

    let t_q = std::time::Instant::now();
    let threads = cfg.threads_per_rank;
    let (results, totals) = if threads > 1 {
        lbe_index::search_batch_parallel_with_mode(&index, queries, threads, cfg.scan_mode)
    } else {
        Searcher::new(&index).search_batch_with_mode(queries, cfg.scan_mode)
    };
    let query_time = t_q.elapsed().as_secs_f64();

    let wire: Vec<Vec<PsmWire>> = results
        .iter()
        .map(|r| r.psms.iter().map(psm_to_wire).collect())
        .collect();
    (
        RankReturn {
            peptides: local_db.len(),
            spectra: index.num_spectra(),
            ions: index.num_ions(),
            build_time,
            query_time,
            stats: totals,
            footprint,
        },
        wire,
    )
}

/// Rank 0's side of a *supervised* distributed search: the same program as
/// [`rank_program`], but every collective the master participates in is the
/// lenient variant, so a worker that dies (or stays unreachable after the
/// communicator's retry policy is exhausted) fails *its slot*, not the run.
/// Lost shares are re-executed locally via [`execute_rank_share`] — which
/// is deterministic — so the merged PSMs are byte-identical to a
/// failure-free run, and the report records what happened in
/// [`DistributedSearchReport::recovery`].
///
/// Workers keep running plain [`rank_program`] (via
/// [`crate::dist::cluster_search_rank`]); the wire pattern is unchanged.
pub(crate) fn supervised_master_program(
    comm: &mut Communicator,
    db: &PeptideDb,
    partition: &Partition,
    mapping: &MappingTable,
    queries: &[Spectrum],
    cfg: &EngineConfig,
    serial_seconds: f64,
) -> Result<DistributedSearchReport, CommError> {
    use std::collections::BTreeSet;
    assert!(comm.is_master(), "supervision runs on rank 0 only");
    let me = comm.rank();
    let speed = cfg.speed_of(me);
    let ranks = comm.size();
    let mut dead: BTreeSet<usize> = BTreeSet::new();

    // Steps 1–3 are identical to `rank_program` (see its comments).
    comm.compute(serial_seconds / speed);
    comm.compute(cfg.cost.per_peptide_extract_s * db.len() as f64 / speed);
    let local_db = extract_local_db(db, partition, me, cfg);

    let t_build0 = comm.now();
    let mut builder = IndexBuilder::new(cfg.slm.clone(), cfg.modspec.clone());
    let index = builder.build_parallel(&local_db, cfg.threads_per_rank);
    comm.compute(cfg.cost.build_seconds(index.num_ions()) / speed);
    let build_time = comm.now() - t_build0;
    let footprint = MemoryFootprint::of_index(&index).with_mapping_table(mapping.len());

    // 4. Separation barrier — lenient: a rank that never checks in is
    //    marked dead and the survivors are released.
    comm.try_barrier_lenient(&mut dead)?;

    // 5. Local search (same as `rank_program`).
    let t_q0 = comm.now();
    let threads = cfg.threads_per_rank;
    let (results, totals) = if threads > 1 {
        lbe_index::search_batch_parallel_with_mode(&index, queries, threads, cfg.scan_mode)
    } else {
        Searcher::new(&index).search_batch_with_mode(queries, cfg.scan_mode)
    };
    let mut thread_times = vec![0.0f64; threads];
    for r in &results {
        let slot = thread_times
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
            .expect("threads >= 1");
        *slot += cfg.cost.query_seconds(&r.stats) / speed;
    }
    let local_psms: Vec<Vec<Psm>> = results.into_iter().map(|r| r.psms).collect();
    comm.compute(thread_times.iter().copied().fold(0.0, f64::max));
    let query_time = comm.now() - t_q0;

    let rr = RankReturn {
        peptides: local_db.len(),
        spectra: index.num_spectra(),
        ions: index.num_ions(),
        build_time,
        query_time,
        stats: totals,
        footprint,
    };

    // 6. Lenient gathers, mirroring the worker-side sequence in
    //    `rank_program` + `cluster_search_rank`: PSMs, counters, clocks.
    let wire: Vec<Vec<PsmWire>> = local_psms
        .iter()
        .map(|q| q.iter().map(psm_to_wire).collect())
        .collect();
    let mut psm_slots = comm.try_gather_lenient(wire, &mut dead)?;
    let rr_slots = comm.try_gather_lenient(rr.to_wire(), &mut dead)?;
    let now = comm.now();
    let time_slots = comm.try_gather_lenient(now, &mut dead)?;

    // 7. Recovery: re-execute every dead rank's share locally. A rank that
    //    died *between* gathers gets fully re-executed too — the recovered
    //    PSMs are identical to whatever partial data it managed to send.
    let t_rec = std::time::Instant::now();
    let ranks_lost: Vec<usize> = dead.iter().copied().collect();
    let mut rank_returns: Vec<RankReturn> = Vec::with_capacity(ranks);
    let mut total_times: Vec<f64> = Vec::with_capacity(ranks);
    for r in 0..ranks {
        if dead.contains(&r) {
            let (rr_r, wire_r) = execute_rank_share(db, partition, r, queries, cfg);
            psm_slots[r] = Some(wire_r);
            rank_returns.push(rr_r);
            total_times.push(now);
        } else {
            rank_returns.push(RankReturn::from_wire(
                rr_slots[r].expect("live rank contributed counters"),
            ));
            total_times.push(time_slots[r].expect("live rank contributed its clock"));
        }
    }
    let queries_reexecuted = ranks_lost.len() * queries.len();
    let recovery_seconds = t_rec.elapsed().as_secs_f64();

    // 8. Merge exactly as `rank_program` does on the master.
    let per_rank: Vec<Vec<Vec<PsmWire>>> = psm_slots
        .into_iter()
        .map(|s| s.expect("every slot filled by gather or recovery"))
        .collect();
    let total_psms: usize = per_rank.iter().flat_map(|r| r.iter().map(Vec::len)).sum();
    comm.compute(cfg.serial.per_psm_merge_s * total_psms as f64 / speed);
    let psms = merge_results(per_rank, mapping, cfg.slm.top_k, queries.len());

    Ok(report_from_parts(
        partition,
        mapping,
        cfg,
        serial_seconds,
        rank_returns,
        total_times,
        psms,
        Some(RecoveryReport {
            ranks_lost,
            queries_reexecuted,
            recovery_seconds,
        }),
    ))
}

fn assemble_report(
    outcome: lbe_cluster::RunOutcome<(RankReturn, Option<Vec<Vec<GlobalPsm>>>)>,
    partition: &Partition,
    mapping: &MappingTable,
    cfg: &EngineConfig,
    serial_seconds: f64,
    num_queries: usize,
) -> DistributedSearchReport {
    let mut psms: Vec<Vec<GlobalPsm>> = vec![Vec::new(); num_queries];
    let mut rank_returns = Vec::with_capacity(outcome.results.len());
    for (rr, merged) in outcome.results {
        rank_returns.push(rr);
        if let Some(m) = merged {
            psms = m;
        }
    }
    report_from_parts(
        partition,
        mapping,
        cfg,
        serial_seconds,
        rank_returns,
        outcome.times,
        psms,
        None,
    )
}

/// Assembles the report from rank-indexed pieces, however they were
/// collected — thread joins (sim), wire gathers (real backends), or a mix
/// of gathers and master-side re-execution (supervised runs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn report_from_parts(
    partition: &Partition,
    mapping: &MappingTable,
    cfg: &EngineConfig,
    serial_seconds: f64,
    rank_returns: Vec<RankReturn>,
    total_times: Vec<f64>,
    psms: Vec<Vec<GlobalPsm>>,
    recovery: Option<RecoveryReport>,
) -> DistributedSearchReport {
    let ranks = partition.num_ranks();
    assert_eq!(rank_returns.len(), ranks, "one RankReturn per rank");
    let mut partition_sizes = Vec::with_capacity(ranks);
    let mut index_spectra = Vec::with_capacity(ranks);
    let mut index_ions = Vec::with_capacity(ranks);
    let mut footprints = Vec::with_capacity(ranks);
    let mut build_times = Vec::with_capacity(ranks);
    let mut rank_query_times = Vec::with_capacity(ranks);
    let mut per_rank_stats = Vec::with_capacity(ranks);
    let mut total_candidates = 0u64;

    for rr in rank_returns {
        partition_sizes.push(rr.peptides);
        index_spectra.push(rr.spectra);
        index_ions.push(rr.ions);
        footprints.push(rr.footprint);
        build_times.push(rr.build_time);
        rank_query_times.push(rr.query_time);
        total_candidates += rr.stats.candidates;
        per_rank_stats.push(rr.stats);
    }

    let imbalance = ImbalanceSummary::from_times(&rank_query_times);
    DistributedSearchReport {
        ranks,
        policy: cfg.policy,
        partition_sizes,
        index_spectra,
        index_ions,
        footprints,
        mapping_table_bytes: mapping.heap_bytes(),
        build_times,
        rank_query_times,
        total_times,
        serial_seconds,
        imbalance,
        total_candidates,
        per_rank_stats,
        psms,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{group_peptides, GroupingParams};
    use lbe_spectra::synthetic::{SyntheticDataset, SyntheticDatasetParams};

    fn small_db() -> PeptideDb {
        let seqs = [
            "ELVISLIVESK",
            "ELVISLIVESR",
            "PEPTIDEK",
            "PEPTIDER",
            "SAMPLERK",
            "SAMPLERR",
            "MNKQMGGR",
            "WWYYFFHHK",
        ];
        PeptideDb::from_vec(
            seqs.iter()
                .map(|s| Peptide::new(s.as_bytes(), 0, 0).unwrap())
                .collect(),
        )
    }

    fn run(
        policy: PartitionPolicy,
        ranks: usize,
    ) -> (DistributedSearchReport, SyntheticDataset, PeptideDb) {
        let db = small_db();
        let grouping = group_peptides(&db, &GroupingParams::default());
        let queries = SyntheticDataset::generate(
            &db,
            &ModSpec::none(),
            &SyntheticDatasetParams {
                num_spectra: 12,
                ..Default::default()
            },
            5,
        );
        let cfg = EngineConfig::with_policy(policy);
        let report = run_distributed_search(&db, &grouping, &queries.spectra, &cfg, ranks);
        (report, queries, db)
    }

    #[test]
    fn exact_cover_across_ranks() {
        let (r, _, db) = run(PartitionPolicy::Cyclic, 4);
        assert_eq!(r.partition_sizes.iter().sum::<usize>(), db.len());
        assert_eq!(r.index_spectra.iter().sum::<usize>(), db.len()); // no mods
    }

    #[test]
    fn search_finds_truth_under_all_policies() {
        for policy in [
            PartitionPolicy::Chunk,
            PartitionPolicy::Cyclic,
            PartitionPolicy::Random { seed: 3 },
        ] {
            let (r, queries, _) = run(policy, 4);
            let mut hits = 0;
            for (qi, truth) in queries.truth.iter().enumerate() {
                if r.psms[qi].first().map(|p| p.peptide) == Some(*truth) {
                    hits += 1;
                }
            }
            // Synthetic queries are high quality; the true peptide should
            // top-rank nearly always regardless of how data is partitioned.
            assert!(hits >= 10, "{policy}: only {hits}/12 top-1 correct");
        }
    }

    #[test]
    fn distributed_equals_single_rank_results() {
        let (r1, queries, _) = run(PartitionPolicy::Cyclic, 1);
        let (r4, _, _) = run(PartitionPolicy::Cyclic, 4);
        assert_eq!(r1.psms.len(), r4.psms.len());
        for (a, b) in r1.psms.iter().zip(&r4.psms) {
            let pa: Vec<(u32, u16)> = a.iter().map(|p| (p.peptide, p.shared_peaks)).collect();
            let pb: Vec<(u32, u16)> = b.iter().map(|p| (p.peptide, p.shared_peaks)).collect();
            assert_eq!(pa, pb, "query {:?}", queries.truth);
        }
        assert_eq!(r1.total_candidates, r4.total_candidates);
    }

    #[test]
    fn deterministic_virtual_times() {
        let (a, _, _) = run(PartitionPolicy::Chunk, 4);
        let (b, _, _) = run(PartitionPolicy::Chunk, 4);
        assert_eq!(a.rank_query_times, b.rank_query_times);
        assert_eq!(a.total_times, b.total_times);
        assert_eq!(a.total_candidates, b.total_candidates);
    }

    #[test]
    fn report_quantities_consistent() {
        let (r, _, _) = run(PartitionPolicy::Cyclic, 4);
        assert_eq!(r.ranks, 4);
        assert!(r.query_time() > 0.0);
        assert!(r.execution_time() >= r.query_time());
        assert!(r.serial_seconds > 0.0);
        assert!(r.imbalance.load_imbalance >= 0.0);
        assert!(r.mapping_table_bytes >= 8 * 4);
        assert_eq!(r.footprints.len(), 4);
        // Master's footprint includes the mapping table; workers' don't.
        assert!(r.footprints[0].mapping_table > 0);
        assert!(r.footprints[1..].iter().all(|f| f.mapping_table == 0));
    }

    #[test]
    fn candidates_counted() {
        let (r, _, _) = run(PartitionPolicy::Cyclic, 2);
        assert!(r.total_candidates > 0);
        assert!(r.cpsms_per_query() > 0.0);
    }

    fn run_with_cfg(cfg: &EngineConfig, ranks: usize) -> DistributedSearchReport {
        let db = small_db();
        let grouping = group_peptides(&db, &GroupingParams::default());
        let queries = SyntheticDataset::generate(
            &db,
            &ModSpec::none(),
            &SyntheticDatasetParams {
                num_spectra: 12,
                ..Default::default()
            },
            5,
        );
        run_distributed_search(&db, &grouping, &queries.spectra, cfg, ranks)
    }

    #[test]
    fn hybrid_threads_shrink_query_time() {
        let flat = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        let mut hybrid = flat.clone();
        hybrid.threads_per_rank = 4;
        let r_flat = run_with_cfg(&flat, 2);
        let r_hyb = run_with_cfg(&hybrid, 2);
        // Same results, faster (or equal) virtual query phase.
        assert_eq!(r_flat.total_candidates, r_hyb.total_candidates);
        assert!(r_hyb.query_time() < r_flat.query_time());
        // With 12 queries over 4 threads the split is near-perfect: ≥2x.
        assert!(r_flat.query_time() / r_hyb.query_time() >= 2.0);
    }

    #[test]
    fn hybrid_real_pool_results_bit_identical_to_flat() {
        let flat = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        let mut hybrid = flat.clone();
        hybrid.threads_per_rank = 3;
        let r_flat = run_with_cfg(&flat, 2);
        let r_hyb = run_with_cfg(&hybrid, 2);
        // The real pool must never change what is found — per-query PSMs
        // (ids, scores, ranks) identical to the sequential per-rank path.
        assert_eq!(r_flat.psms, r_hyb.psms);
        assert_eq!(r_flat.per_rank_stats, r_hyb.per_rank_stats);
    }

    #[test]
    fn heterogeneous_slow_rank_dominates_without_weighting() {
        let mut cfg = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        cfg.rank_speeds = Some(vec![1.0, 1.0, 1.0, 0.25]);
        let r = run_with_cfg(&cfg, 4);
        // The 4x-slower rank should be the makespan.
        let slowest = r
            .rank_query_times
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(slowest, 3);
        assert!(r.imbalance.load_imbalance > 0.3);
    }

    #[test]
    fn speed_weighted_partition_rebalances() {
        let mut uniform = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        uniform.rank_speeds = Some(vec![1.0, 1.0, 0.5, 0.5]);
        let mut weighted = uniform.clone();
        weighted.weight_partition_by_speed = true;
        let r_u = run_with_cfg(&uniform, 4);
        let r_w = run_with_cfg(&weighted, 4);
        // Weighted partitioning gives slow ranks fewer peptides...
        assert!(r_w.partition_sizes[2] < r_w.partition_sizes[0]);
        // ...and cuts the imbalance versus speed-blind cyclic.
        assert!(
            r_w.imbalance.load_imbalance < r_u.imbalance.load_imbalance,
            "weighted {:.3} !< uniform {:.3}",
            r_w.imbalance.load_imbalance,
            r_u.imbalance.load_imbalance
        );
        // Results unchanged.
        assert_eq!(r_w.total_candidates, r_u.total_candidates);
    }

    #[test]
    fn disk_spilled_ranks_match_in_memory_run_exactly() {
        let dir = std::env::temp_dir().join("lbe_engine_spill_test");
        std::fs::remove_dir_all(&dir).ok();
        let in_mem = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        let mut spilled = in_mem.clone();
        spilled.spill_dir = Some(dir.clone());
        let r_mem = run_with_cfg(&in_mem, 3);
        let r_spill = run_with_cfg(&spilled, 3);
        // Disk round-tripping every rank's index must be invisible in the
        // results: same PSMs, counters, and virtual times.
        assert_eq!(r_mem.psms, r_spill.psms);
        assert_eq!(r_mem.per_rank_stats, r_spill.per_rank_stats);
        assert_eq!(r_mem.total_candidates, r_spill.total_candidates);
        assert_eq!(r_mem.rank_query_times, r_spill.rank_query_times);
        assert_eq!(r_mem.footprints, r_spill.footprints);
        // One v2 container per rank is left behind, each independently
        // reloadable.
        for rank in 0..3 {
            let path = dir.join(format!("rank{rank:04}.slm2"));
            let idx = lbe_index::read_index_path(&path)
                .unwrap_or_else(|e| panic!("rank {rank} spill unreadable: {e}"));
            assert!(idx.is_arena_backed());
            assert_eq!(idx.num_spectra(), r_spill.index_spectra[rank]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Writes `db` as the peptide-per-record FASTA the streaming path
    /// expects (record `i` = peptide id `i`), then reloads it so the
    /// in-memory db matches the file byte for byte.
    fn db_on_disk(name: &str) -> (PeptideDb, std::path::PathBuf) {
        let dir = std::env::temp_dir().join("lbe_engine_stream_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let records: Vec<lbe_bio::fasta::Protein> = small_db()
            .iter()
            .map(|(id, p)| lbe_bio::fasta::Protein::new(format!("pep{id:07}"), p.sequence()))
            .collect();
        lbe_bio::fasta::write_fasta_path(&path, &records).unwrap();
        (crate::ingest::load_peptide_db(&path).unwrap(), path)
    }

    #[test]
    fn streamed_partition_db_matches_in_memory_run_exactly() {
        let (db, path) = db_on_disk("db.fasta");
        let grouping = group_peptides(&db, &GroupingParams::default());
        let queries = SyntheticDataset::generate(
            &db,
            &ModSpec::none(),
            &SyntheticDatasetParams {
                num_spectra: 12,
                ..Default::default()
            },
            5,
        );
        let in_mem = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        let mut streamed = in_mem.clone();
        streamed.stream_db_from = Some(path.clone());
        let r_mem = run_distributed_search(&db, &grouping, &queries.spectra, &in_mem, 3);
        let r_stream = run_distributed_search(&db, &grouping, &queries.spectra, &streamed, 3);
        // Streaming each rank's partition off disk must be invisible in
        // the results: same PSMs, counters, and virtual times.
        assert_eq!(r_mem.psms, r_stream.psms);
        assert_eq!(r_mem.per_rank_stats, r_stream.per_rank_stats);
        assert_eq!(r_mem.total_candidates, r_stream.total_candidates);
        assert_eq!(r_mem.rank_query_times, r_stream.rank_query_times);
        assert_eq!(r_mem.partition_sizes, r_stream.partition_sizes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "does not cover this rank's partition")]
    fn streamed_partition_db_rejects_truncated_file() {
        let (db, path) = db_on_disk("truncated.fasta");
        // Rewrite the file with the last record missing: a partition that
        // references it can no longer be satisfied. (Exercised directly —
        // inside a cluster run the panic surfaces as the failing rank's
        // thread dying, which the barrier turns into a timeout.)
        let records: Vec<lbe_bio::fasta::Protein> = db
            .iter()
            .take(db.len() - 1)
            .map(|(id, p)| lbe_bio::fasta::Protein::new(format!("pep{id:07}"), p.sequence()))
            .collect();
        lbe_bio::fasta::write_fasta_path(&path, &records).unwrap();
        let all_ids: Vec<u32> = (0..db.len() as u32).collect();
        stream_partition_db(&path, &all_ids, 0);
    }

    #[test]
    #[should_panic(expected = "rank_speeds must cover every rank")]
    fn mismatched_speed_vector_rejected() {
        let mut cfg = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        cfg.rank_speeds = Some(vec![1.0, 1.0]);
        run_with_cfg(&cfg, 4);
    }
}
