//! Streaming ingest of real data files — the bridge between the on-disk
//! formats (`.fasta` proteomes/peptide databases, `.mgf`/`.ms2`/`.mzML`
//! query files) and the engine's in-memory inputs.
//!
//! Everything here streams: query spectra are preprocessed one at a time as
//! they come off a [`SpectrumReader`]; peptide databases are built record
//! by record from a [`FastaReader`]; raw proteomes go through the bounded-
//! memory [`lbe_bio::digest::digest_stream`] path. Only the outputs that
//! must be resident (the preprocessed query batch, the peptide database)
//! are ever held whole.

use lbe_bio::dedup::{dedup_peptides, DedupStats};
use lbe_bio::digest::DigestParams;
use lbe_bio::error::BioError;
use lbe_bio::fasta::FastaReader;
use lbe_bio::peptide::{Peptide, PeptideDb};
use lbe_spectra::preprocess::{preprocess_spectrum, PreprocessParams};
use lbe_spectra::reader::{SpectrumFormat, SpectrumReader};
use lbe_spectra::spectrum::Spectrum;
use std::path::Path;

fn ingest_err(msg: impl Into<String>) -> BioError {
    BioError::FastaParse {
        msg: msg.into(),
        line: 0,
    }
}

/// Counters from one query-file ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Detected file format.
    pub format: SpectrumFormat,
    /// Spectra returned (after MS1 skipping, before any downstream filter).
    pub spectra: usize,
    /// mzML spectra skipped because their `ms level` cvParam was not 2.
    pub skipped_non_ms2: usize,
}

/// Streams a query file of any supported format (autodetected), applying
/// `preprocess` to each spectrum as it is read — the raw spectrum is
/// dropped immediately, so peak memory is the *preprocessed* batch plus
/// one in-flight spectrum.
pub fn load_queries(
    path: impl AsRef<Path>,
    preprocess: &PreprocessParams,
) -> Result<(Vec<Spectrum>, IngestStats), BioError> {
    let mut reader = SpectrumReader::open(path)?;
    let format = reader.format();
    let mut out = Vec::new();
    for s in reader.by_ref() {
        out.push(preprocess_spectrum(&s?, preprocess));
    }
    let stats = IngestStats {
        format,
        spectra: out.len(),
        skipped_non_ms2: reader.skipped_non_ms2(),
    };
    Ok((out, stats))
}

/// Builds a peptide per FASTA record, streaming the file: record `i`
/// becomes peptide id `i` (the convention of every `lbe` CLI artifact —
/// `digest`/`cluster-db` outputs). Errors on records with non-standard
/// residues.
pub fn load_peptide_db(path: impl AsRef<Path>) -> Result<PeptideDb, BioError> {
    let path = path.as_ref();
    let mut peptides: Vec<Peptide> = Vec::new();
    for record in FastaReader::open(path)? {
        let record = record?;
        let i = peptides.len();
        let p = Peptide::new(&record.sequence, i as u32, 0).ok_or_else(|| {
            ingest_err(format!(
                "record {} ({}) contains non-standard residues",
                i,
                record.accession()
            ))
        })?;
        peptides.push(p);
    }
    Ok(PeptideDb::from_vec(peptides))
}

/// Streams a *raw proteome* FASTA through in-silico digestion and duplicate
/// removal, producing the same database `digest` + `dedup` build eagerly —
/// without ever holding the protein records.
pub fn load_proteome_digested(
    path: impl AsRef<Path>,
    params: &DigestParams,
) -> Result<(PeptideDb, DedupStats), BioError> {
    let digested = lbe_bio::digest::digest_fasta_path(path, params)?;
    Ok(dedup_peptides(digested))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbe_bio::fasta::{write_fasta_path, Protein};
    use lbe_spectra::spectrum::Peak;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lbe_core_ingest_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn load_queries_preprocesses_each_format() {
        let spectra: Vec<Spectrum> = (0..5)
            .map(|i| {
                Spectrum::new(
                    i,
                    400.0 + f64::from(i),
                    2,
                    (0..150)
                        .map(|k| Peak::new(100.0 + f64::from(k), f32::from(k as u16)))
                        .collect(),
                )
            })
            .collect();
        let pre = PreprocessParams::default();
        let ms2 = tmp("q.ms2");
        lbe_spectra::write_ms2_path(&ms2, &spectra).unwrap();
        let mzml = tmp("q.mzML");
        lbe_spectra::write_mzml_path(&mzml, &spectra).unwrap();
        for path in [&ms2, &mzml] {
            let (qs, stats) = load_queries(path, &pre).unwrap();
            assert_eq!(qs.len(), 5);
            assert_eq!(stats.spectra, 5);
            assert_eq!(stats.skipped_non_ms2, 0);
            // top-100 preprocessing applied.
            assert!(qs.iter().all(|q| q.peak_count() <= 100));
        }
        std::fs::remove_file(&ms2).ok();
        std::fs::remove_file(&mzml).ok();
    }

    #[test]
    fn load_peptide_db_assigns_record_ids() {
        let path = tmp("pep.fasta");
        write_fasta_path(
            &path,
            &[
                Protein::new("pep0", "PEPTIDEK"),
                Protein::new("pep1", "AAAK"),
            ],
        )
        .unwrap();
        let db = load_peptide_db(&path).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(0).sequence(), b"PEPTIDEK");
        assert_eq!(db.get(1).protein(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_peptide_db_rejects_nonstandard_residues() {
        let path = tmp("bad.fasta");
        write_fasta_path(&path, &[Protein::new("x", "PEPXK")]).unwrap();
        let err = load_peptide_db(&path).unwrap_err();
        assert!(err.to_string().contains("non-standard"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_proteome_digested_matches_eager_pipeline() {
        let path = tmp("prot.fasta");
        write_fasta_path(
            &path,
            &[
                Protein::new("sp|P1|A", "MKWVTFISLLFLFSSAYSRKAAKCCRDDEEFFK"),
                Protein::new("sp|P2|B", "PEPTIDEKPEPTIDERSAMPLEK"),
            ],
        )
        .unwrap();
        let params = DigestParams::default();
        let eager = {
            let proteins = lbe_bio::fasta::read_fasta_path(&path).unwrap();
            let digested = lbe_bio::digest::digest_proteome(&proteins, &params).unwrap();
            dedup_peptides(digested).0
        };
        let (streamed, _) = load_proteome_digested(&path, &params).unwrap();
        assert_eq!(streamed, eager);
        std::fs::remove_file(&path).ok();
    }
}
