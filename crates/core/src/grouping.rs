//! Algorithm 1 — grouping similar peptide sequences.
//!
//! Verbatim from the paper (§III-C):
//!
//! 1. sort peptide sequences by length, then lexicographically;
//! 2. start group `g1` at the first sequence `s1`;
//! 3. scan forward: sequence `sj` joins the current group while the group
//!    has fewer than `gsize` members (default 20) and `sj` is similar to the
//!    group *seed* under the active criterion:
//!    * **criterion 1**: `ED(s1, sj) ≤ max{d, len(sj)/2}` (default `d = 2`);
//!    * **criterion 2**: `ED(s1, sj) / max{len(s1), len(sj)} ≤ d'`
//!      (default `d' = 0.86`);
//! 4. on failure, `sj` seeds the next group; repeat until exhausted.
//!
//! The output is the sorted traversal order plus the group sizes — exactly
//! the `Lz` list of the paper's pseudocode, which is all the partitioner
//! needs.

use crate::distance::{edit_distance, edit_distance_bounded};
use lbe_bio::peptide::PeptideDb;

/// The two similarity cutoffs of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupingCriterion {
    /// `ED(seed, s) ≤ max{d, len(s)/2}`.
    Absolute {
        /// The constant `d` (paper default 2).
        d: usize,
    },
    /// `ED(seed, s) / max{len(seed), len(s)} ≤ d'`.
    Normalized {
        /// The ratio `d'` (paper default 0.86).
        d_prime: f64,
    },
}

impl GroupingCriterion {
    /// Paper default for criterion 1.
    pub fn absolute_default() -> Self {
        GroupingCriterion::Absolute { d: 2 }
    }

    /// Paper default for criterion 2 (used in the evaluation, §V-A.1).
    pub fn normalized_default() -> Self {
        GroupingCriterion::Normalized { d_prime: 0.86 }
    }

    /// Whether `candidate` is similar enough to `seed`.
    pub fn admits(&self, seed: &[u8], candidate: &[u8]) -> bool {
        match *self {
            GroupingCriterion::Absolute { d } => {
                let cutoff = d.max(candidate.len() / 2);
                edit_distance_bounded(seed, candidate, cutoff).is_some()
            }
            GroupingCriterion::Normalized { d_prime } => {
                let denom = seed.len().max(candidate.len());
                if denom == 0 {
                    return true; // two empty sequences are identical
                }
                // The cutoff distance is d'·denom — still bounded, so the
                // banded implementation applies.
                let cutoff = (d_prime * denom as f64).floor() as usize;
                edit_distance_bounded(seed, candidate, cutoff).is_some()
            }
        }
    }

    /// The raw distance (unbounded) — exposed for diagnostics/ablations.
    pub fn distance(seed: &[u8], candidate: &[u8]) -> usize {
        edit_distance(seed, candidate)
    }
}

/// Parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupingParams {
    /// Similarity criterion.
    pub criterion: GroupingCriterion,
    /// Maximum group size `gsize` (paper default 20; the pseudocode's
    /// `csize`).
    pub gsize: usize,
}

impl Default for GroupingParams {
    fn default() -> Self {
        GroupingParams {
            // §V-A.1: "clustered using criterion 2 with default settings".
            criterion: GroupingCriterion::normalized_default(),
            gsize: 20,
        }
    }
}

/// The output of Algorithm 1: the sorted traversal order and group sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    /// Peptide ids in sorted (length, lex) order — the order groups are
    /// laid out in.
    pub order: Vec<u32>,
    /// Size of each group, in traversal order (`Σ sizes == order.len()`).
    pub group_sizes: Vec<u32>,
}

impl Grouping {
    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.group_sizes.len()
    }

    /// Total peptides grouped.
    pub fn num_peptides(&self) -> usize {
        self.order.len()
    }

    /// Mean group size.
    pub fn mean_group_size(&self) -> f64 {
        if self.group_sizes.is_empty() {
            0.0
        } else {
            self.order.len() as f64 / self.group_sizes.len() as f64
        }
    }

    /// Iterates over groups as slices of peptide ids.
    pub fn iter_groups(&self) -> impl Iterator<Item = &[u32]> {
        GroupIter {
            order: &self.order,
            sizes: &self.group_sizes,
            gi: 0,
            offset: 0,
        }
    }

    /// A trivial grouping (every peptide its own group) over `n` peptides in
    /// id order — the "no grouping" ablation baseline.
    pub fn trivial(n: usize) -> Self {
        Grouping {
            order: (0..n as u32).collect(),
            group_sizes: vec![1; n],
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        let total: u64 = self.group_sizes.iter().map(|&s| s as u64).sum();
        if total != self.order.len() as u64 {
            return Err(format!(
                "group sizes sum to {total}, order holds {}",
                self.order.len()
            ));
        }
        if self.group_sizes.contains(&0) {
            return Err("empty group".into());
        }
        let mut seen = vec![false; self.order.len()];
        for &id in &self.order {
            let i = id as usize;
            if i >= seen.len() || seen[i] {
                return Err(format!("peptide id {id} missing or duplicated"));
            }
            seen[i] = true;
        }
        Ok(())
    }
}

struct GroupIter<'a> {
    order: &'a [u32],
    sizes: &'a [u32],
    gi: usize,
    offset: usize,
}

impl<'a> Iterator for GroupIter<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        let size = *self.sizes.get(self.gi)? as usize;
        let slice = &self.order[self.offset..self.offset + size];
        self.gi += 1;
        self.offset += size;
        Some(slice)
    }
}

/// Groups peptides by **precursor mass** — the grouping key LBE prescribes
/// when the underlying engine uses precursor-mass filtration (§III-C: "if
/// the underlying algorithm filters reference data based on precursor
/// masses, then the LBE must ensure identical average peptide precursor
/// mass across the system").
///
/// Peptides are sorted by mass; a group grows while the candidate is within
/// `mass_window` Daltons of the group seed and the group holds fewer than
/// `gsize` members. Dealing these groups cyclically gives every rank a
/// near-identical mass profile, so any precursor window selects a similar
/// candidate count on every machine.
pub fn group_peptides_by_mass(db: &PeptideDb, mass_window: f64, gsize: usize) -> Grouping {
    assert!(gsize >= 1, "gsize must be at least 1");
    assert!(mass_window >= 0.0 && mass_window.is_finite());
    let mut order: Vec<u32> = (0..db.len() as u32).collect();
    order.sort_by(|&a, &b| {
        db.get(a)
            .mass()
            .partial_cmp(&db.get(b).mass())
            .expect("finite masses")
    });
    let mut group_sizes: Vec<u32> = Vec::new();
    if order.is_empty() {
        return Grouping { order, group_sizes };
    }
    let mut seed_mass = db.get(order[0]).mass();
    group_sizes.push(1);
    for &id in &order[1..] {
        let m = db.get(id).mass();
        let current = group_sizes.last_mut().expect("at least one group");
        if *current as usize >= gsize || (m - seed_mass) > mass_window {
            seed_mass = m;
            group_sizes.push(1);
        } else {
            *current += 1;
        }
    }
    Grouping { order, group_sizes }
}

/// Runs Algorithm 1 over `db`.
pub fn group_peptides(db: &PeptideDb, params: &GroupingParams) -> Grouping {
    assert!(params.gsize >= 1, "gsize must be at least 1");
    // SortByLength then LexSort (on ids, so the db itself is untouched).
    let mut order: Vec<u32> = (0..db.len() as u32).collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (db.get(a), db.get(b));
        pa.len()
            .cmp(&pb.len())
            .then_with(|| pa.sequence().cmp(pb.sequence()))
    });

    let mut group_sizes: Vec<u32> = Vec::new();
    if order.is_empty() {
        return Grouping { order, group_sizes };
    }

    let mut seed = db.get(order[0]).sequence();
    group_sizes.push(1);
    for &id in &order[1..] {
        let candidate = db.get(id).sequence();
        let current = group_sizes.last_mut().expect("at least one group");
        if *current as usize >= params.gsize || !params.criterion.admits(seed, candidate) {
            seed = candidate;
            group_sizes.push(1);
        } else {
            *current += 1;
        }
    }
    Grouping { order, group_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbe_bio::peptide::Peptide;

    fn db(seqs: &[&str]) -> PeptideDb {
        PeptideDb::from_vec(
            seqs.iter()
                .map(|s| Peptide::new(s.as_bytes(), 0, 0).unwrap())
                .collect(),
        )
    }

    #[test]
    fn similar_sequences_grouped() {
        // Family of near-identical peptides + one outlier.
        let d = db(&["AAAGGGK", "AAAGGGR", "AAAGGCK", "WWWWYYFFK"]);
        let g = group_peptides(
            &d,
            &GroupingParams {
                criterion: GroupingCriterion::Absolute { d: 2 },
                gsize: 20,
            },
        );
        g.validate().unwrap();
        assert_eq!(g.num_groups(), 2);
        let sizes: Vec<u32> = g.group_sizes.clone();
        assert!(sizes.contains(&3) && sizes.contains(&1), "{sizes:?}");
    }

    #[test]
    fn gsize_caps_groups() {
        let seqs: Vec<String> = (0..10).map(|_| "AAAGGGK".to_string()).collect();
        let refs: Vec<&str> = seqs.iter().map(String::as_str).collect();
        let g = group_peptides(
            &db(&refs),
            &GroupingParams {
                criterion: GroupingCriterion::Absolute { d: 2 },
                gsize: 4,
            },
        );
        g.validate().unwrap();
        assert!(g.group_sizes.iter().all(|&s| s <= 4));
        assert_eq!(g.num_groups(), 3); // 4 + 4 + 2
    }

    #[test]
    fn order_is_length_then_lex() {
        let d = db(&["CCCCK", "AAK", "ACK", "AAAK"]);
        let g = group_peptides(&d, &GroupingParams::default());
        let seqs: Vec<&str> = g.order.iter().map(|&id| d.get(id).sequence_str()).collect();
        assert_eq!(seqs, vec!["AAK", "ACK", "AAAK", "CCCCK"]);
    }

    #[test]
    fn criterion1_cutoff_is_max_of_d_and_half_len() {
        let c = GroupingCriterion::Absolute { d: 2 };
        // len 12 candidate → cutoff max(2,6)=6: distance 5 admits.
        assert!(c.admits(b"AAAAAAAAAAAA", b"AAAAAAAGGGGG"));
        // short candidate → cutoff 2: distance 3 rejects.
        assert!(!c.admits(b"AAAA", b"AGGG"));
    }

    #[test]
    fn criterion2_normalized() {
        let c = GroupingCriterion::Normalized { d_prime: 0.5 };
        // distance 2, maxlen 8 → 0.25 ≤ 0.5 admits.
        assert!(c.admits(b"PEPTIDEK", b"PEPTIDER"));
        // distance 8, maxlen 8 → 1.0 > 0.5 rejects.
        assert!(!c.admits(b"AAAAAAAA", b"GGGGGGGG"));
    }

    #[test]
    fn paper_default_criterion2_is_loose() {
        // d' = 0.86 admits nearly everything of similar length — exactly
        // what the paper's default does. Cutoff = floor(0.86·8) = 6.
        let c = GroupingCriterion::normalized_default();
        assert!(c.admits(b"AAAAAAAA", b"GGGAAAAA")); // distance 3 ≤ 6
        assert!(c.admits(b"AAAAAAAA", b"GGGGGGAA")); // distance 6 ≤ 6
        assert!(!c.admits(b"AAAAAAAA", b"GGGGGGGA")); // distance 7 > 6
    }

    #[test]
    fn singleton_and_empty_dbs() {
        let g = group_peptides(&db(&["AAK"]), &GroupingParams::default());
        g.validate().unwrap();
        assert_eq!(g.num_groups(), 1);
        let g = group_peptides(&PeptideDb::new(), &GroupingParams::default());
        g.validate().unwrap();
        assert_eq!(g.num_groups(), 0);
        assert_eq!(g.mean_group_size(), 0.0);
    }

    #[test]
    fn iter_groups_covers_order() {
        let d = db(&["AAAGGGK", "AAAGGGR", "WWWWYYFFK", "WWWWYYFFR"]);
        let g = group_peptides(
            &d,
            &GroupingParams {
                criterion: GroupingCriterion::Absolute { d: 2 },
                gsize: 20,
            },
        );
        let flattened: Vec<u32> = g.iter_groups().flatten().copied().collect();
        assert_eq!(flattened, g.order);
        assert_eq!(g.iter_groups().count(), g.num_groups());
    }

    #[test]
    fn trivial_grouping() {
        let g = Grouping::trivial(5);
        g.validate().unwrap();
        assert_eq!(g.num_groups(), 5);
        assert_eq!(g.mean_group_size(), 1.0);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut g = Grouping::trivial(3);
        g.group_sizes[0] = 2;
        assert!(g.validate().is_err());
        let g = Grouping {
            order: vec![0, 0, 1],
            group_sizes: vec![3],
        };
        assert!(g.validate().is_err());
        let g = Grouping {
            order: vec![0],
            group_sizes: vec![1, 0],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn deterministic() {
        let d = db(&["AAAGGGK", "AAAGGGR", "WWWWYYFFK", "PEPTIDEK", "PEPTIDER"]);
        let p = GroupingParams::default();
        assert_eq!(group_peptides(&d, &p), group_peptides(&d, &p));
    }

    #[test]
    fn mass_grouping_orders_by_mass() {
        let d = db(&["WWWWK", "GGK", "PEPTIDEK", "AAAK"]);
        let g = group_peptides_by_mass(&d, 50.0, 20);
        g.validate().unwrap();
        let masses: Vec<f64> = g.order.iter().map(|&id| d.get(id).mass()).collect();
        assert!(masses.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mass_grouping_splits_on_window() {
        // GGK ~260, AAK-like cluster, then heavy outlier.
        let d = db(&["GGK", "GGR", "WWWWWWWWK"]);
        let g = group_peptides_by_mass(&d, 40.0, 20);
        g.validate().unwrap();
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.group_sizes[0], 2);
    }

    #[test]
    fn mass_grouping_respects_gsize() {
        let seqs: Vec<String> = (0..9).map(|_| "AAGGK".to_string()).collect();
        let refs: Vec<&str> = seqs.iter().map(String::as_str).collect();
        let g = group_peptides_by_mass(&db(&refs), 10.0, 4);
        g.validate().unwrap();
        assert!(g.group_sizes.iter().all(|&s| s <= 4));
    }

    #[test]
    fn mass_grouping_balances_rank_mass_sketch() {
        use crate::partition::{partition_groups, PartitionPolicy};
        // A mass gradient: cyclic dealing should equalize mean mass per
        // rank; chunk should not.
        let seqs: Vec<String> = (1..=40).map(|i| format!("{}K", "G".repeat(i))).collect();
        let refs: Vec<&str> = seqs.iter().map(String::as_str).collect();
        let d = db(&refs);
        let g = group_peptides_by_mass(&d, 30.0, 4);
        let mean_mass = |ids: &[u32]| -> f64 {
            ids.iter().map(|&id| d.get(id).mass()).sum::<f64>() / ids.len() as f64
        };
        let cyc = partition_groups(&g, 4, PartitionPolicy::Cyclic);
        let chk = partition_groups(&g, 4, PartitionPolicy::Chunk);
        let spread = |p: &crate::partition::Partition| {
            let means: Vec<f64> = (0..4).map(|m| mean_mass(p.rank(m))).collect();
            let max = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = means.iter().copied().fold(f64::INFINITY, f64::min);
            max - min
        };
        assert!(
            spread(&cyc) < spread(&chk) / 5.0,
            "cyclic mass spread {:.1} should be far below chunk {:.1}",
            spread(&cyc),
            spread(&chk)
        );
    }

    #[test]
    fn mass_grouping_empty_db() {
        let g = group_peptides_by_mass(&PeptideDb::new(), 10.0, 5);
        g.validate().unwrap();
        assert_eq!(g.num_groups(), 0);
    }

    #[test]
    fn seed_is_fixed_within_group() {
        // A chain A→B→C where each neighbour is within d but C is far from A
        // must split when the seed stays at A (no transitive chaining).
        let d = db(&["AAAAAAAA", "AAAAAGGG", "AAGGGGGG"]);
        let g = group_peptides(
            &d,
            &GroupingParams {
                criterion: GroupingCriterion::Absolute { d: 3 },
                gsize: 20,
            },
        );
        // seed AAAAAAAA: AAAAAGGG at distance 3 joins (cutoff max(3,4)=4),
        // AAGGGGGG at distance 6 > 4 starts a new group.
        assert_eq!(g.group_sizes, vec![2, 1]);
    }
}
