//! The LBE distribution policies (§III-D).
//!
//! Given the grouped traversal order from Algorithm 1 and `p` ranks:
//!
//! * **Chunk** — contiguous `N/p` slices of the grouped order. This is the
//!   conventional shared-memory layout (Fig. 1) applied across machines —
//!   the baseline LBE beats, because whole groups of similar spectra land on
//!   one machine (Fig. 2).
//! * **Cyclic** — round-robin over the grouped order, i.e. the members of
//!   every group are dealt across ranks like cards; each rank receives a
//!   near-identical "sketch" of every group (Fig. 3).
//! * **Random** — each group's members are shuffled (seeded), then the
//!   concatenation is chunk-split; quality "may depend on initial choice of
//!   seed value" (§III-D.3).
//!
//! The invariant (checked by `validate` and property tests): every peptide
//! is assigned to **exactly one** rank.

use crate::grouping::Grouping;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// A data-distribution policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Contiguous `N/p` chunks of the grouped order (the baseline).
    Chunk,
    /// Round-robin over the grouped order.
    Cyclic,
    /// Global shuffle of the grouped order, then chunk split — the paper's
    /// `pep(m) = {chunk(shuffle(i))}`.
    ///
    /// The prose ("the peptide sequences in each group are shuffled") reads
    /// as a *per-group* shuffle, but that cannot reproduce Fig. 6: a ≤ 20
    /// member group shuffled in place stays inside the same N/p ≈ thousands
    /// chunk, making Random identical to Chunk. The formula (a shuffle of
    /// the index set) and the measured result (Random ≈ Cyclic quality)
    /// both imply the global interpretation; the literal per-group variant
    /// is kept as [`PartitionPolicy::RandomWithinGroups`] for the ablation.
    Random {
        /// Shuffle seed (the paper notes distribution quality depends on it).
        seed: u64,
    },
    /// The literal reading of §III-D.3: shuffle *within* each group, then
    /// chunk split. Provided as an ablation; behaves like Chunk whenever
    /// groups are much smaller than `N/p`.
    RandomWithinGroups {
        /// Shuffle seed.
        seed: u64,
    },
}

impl fmt::Display for PartitionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionPolicy::Chunk => write!(f, "chunk"),
            PartitionPolicy::Cyclic => write!(f, "cyclic"),
            PartitionPolicy::Random { seed } => write!(f, "random(seed={seed})"),
            PartitionPolicy::RandomWithinGroups { seed } => {
                write!(f, "random-within-groups(seed={seed})")
            }
        }
    }
}

/// A complete assignment of peptides to ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `ranks[m]` = global peptide ids assigned to rank `m`, in local-id
    /// order (local id `l` on rank `m` is `ranks[m][l]`).
    pub ranks: Vec<Vec<u32>>,
    /// The policy that produced this assignment.
    pub policy: PartitionPolicy,
}

impl Partition {
    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total peptides assigned.
    pub fn total(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }

    /// The peptides of one rank.
    pub fn rank(&self, m: usize) -> &[u32] {
        &self.ranks[m]
    }

    /// Largest/smallest rank loads (peptide counts).
    pub fn load_spread(&self) -> (usize, usize) {
        let max = self.ranks.iter().map(Vec::len).max().unwrap_or(0);
        let min = self.ranks.iter().map(Vec::len).min().unwrap_or(0);
        (min, max)
    }

    /// Checks the exact-cover invariant against `n` total peptides.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let mut seen = vec![false; n];
        for (m, list) in self.ranks.iter().enumerate() {
            for &id in list {
                let i = id as usize;
                if i >= n {
                    return Err(format!("rank {m} holds out-of-range peptide {id}"));
                }
                if seen[i] {
                    return Err(format!("peptide {id} assigned to more than one rank"));
                }
                seen[i] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("peptide {missing} not assigned to any rank"));
        }
        Ok(())
    }
}

/// Applies `policy` to the grouped order, producing per-rank peptide lists.
pub fn partition_groups(
    grouping: &Grouping,
    num_ranks: usize,
    policy: PartitionPolicy,
) -> Partition {
    assert!(num_ranks >= 1, "need at least one rank");
    let order = match policy {
        PartitionPolicy::Random { seed } => {
            // Global shuffle of the grouped order (see the enum docs for
            // why this — not a per-group shuffle — is the paper's policy).
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut out = grouping.order.clone();
            out.shuffle(&mut rng);
            out
        }
        PartitionPolicy::RandomWithinGroups { seed } => {
            // Literal §III-D.3: shuffle each group in place.
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut out = Vec::with_capacity(grouping.order.len());
            for group in grouping.iter_groups() {
                let mut g: Vec<u32> = group.to_vec();
                g.shuffle(&mut rng);
                out.extend(g);
            }
            out
        }
        _ => grouping.order.clone(),
    };

    let n = order.len();
    let mut ranks: Vec<Vec<u32>> = (0..num_ranks)
        .map(|_| Vec::with_capacity(n / num_ranks + 1))
        .collect();
    match policy {
        PartitionPolicy::Chunk
        | PartitionPolicy::Random { .. }
        | PartitionPolicy::RandomWithinGroups { .. } => {
            // pep(m) = { i | N/p·m ≤ i < N/p·(m+1) } with remainder spread
            // over the leading ranks (balanced counts).
            let base = n / num_ranks;
            let extra = n % num_ranks;
            let mut offset = 0;
            for (m, rank) in ranks.iter_mut().enumerate() {
                let take = base + usize::from(m < extra);
                rank.extend_from_slice(&order[offset..offset + take]);
                offset += take;
            }
        }
        PartitionPolicy::Cyclic => {
            // pep(m) = { i | i mod p == m } over the grouped order — the
            // members of each group are dealt across ranks.
            for (i, &id) in order.iter().enumerate() {
                ranks[i % num_ranks].push(id);
            }
        }
    }
    Partition { ranks, policy }
}

/// Weighted cyclic partitioning for **heterogeneous** clusters — the
/// paper's §VIII "load-predicting model for heterogeneous memory-distributed
/// architectures" direction.
///
/// Deals the grouped order so rank `m` receives a share proportional to
/// `weights[m]` (e.g. relative core speeds), interleaved like Cyclic so each
/// rank still sees a similar data sketch. Assignment is the deterministic
/// greedy largest-deficit rule: peptide `i` goes to the rank whose assigned
/// count is furthest below its proportional target.
pub fn partition_weighted_cyclic(grouping: &Grouping, weights: &[f64]) -> Partition {
    assert!(!weights.is_empty(), "need at least one rank");
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "weights must be positive and finite"
    );
    let p = weights.len();
    let total_w: f64 = weights.iter().sum();
    let n = grouping.order.len();
    let mut ranks: Vec<Vec<u32>> = (0..p).map(|_| Vec::with_capacity(n / p + 1)).collect();
    let mut assigned = vec![0usize; p];
    for (i, &id) in grouping.order.iter().enumerate() {
        // Deficit of rank m after i assignments: target share minus actual.
        let mut best = 0usize;
        let mut best_deficit = f64::NEG_INFINITY;
        for m in 0..p {
            let target = weights[m] / total_w * (i + 1) as f64;
            let deficit = target - assigned[m] as f64;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = m;
            }
        }
        ranks[best].push(id);
        assigned[best] += 1;
    }
    Partition {
        ranks,
        policy: PartitionPolicy::Cyclic, // sketch-wise equivalent family
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{group_peptides, GroupingCriterion, GroupingParams};
    use lbe_bio::peptide::{Peptide, PeptideDb};

    fn grouping(n: usize) -> Grouping {
        // n peptides in 2 groups (first half / second half) for structure.
        Grouping {
            order: (0..n as u32).collect(),
            group_sizes: vec![(n / 2) as u32, (n - n / 2) as u32],
        }
    }

    #[test]
    fn chunk_is_contiguous() {
        let p = partition_groups(&grouping(10), 2, PartitionPolicy::Chunk);
        assert_eq!(p.rank(0), &[0, 1, 2, 3, 4]);
        assert_eq!(p.rank(1), &[5, 6, 7, 8, 9]);
        p.validate(10).unwrap();
    }

    #[test]
    fn cyclic_deals_round_robin() {
        let p = partition_groups(&grouping(6), 3, PartitionPolicy::Cyclic);
        assert_eq!(p.rank(0), &[0, 3]);
        assert_eq!(p.rank(1), &[1, 4]);
        assert_eq!(p.rank(2), &[2, 5]);
        p.validate(6).unwrap();
    }

    #[test]
    fn random_covers_exactly() {
        let p = partition_groups(&grouping(17), 4, PartitionPolicy::Random { seed: 7 });
        p.validate(17).unwrap();
        let (min, max) = p.load_spread();
        assert!(max - min <= 1);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let g = grouping(20);
        let a = partition_groups(&g, 4, PartitionPolicy::Random { seed: 1 });
        let b = partition_groups(&g, 4, PartitionPolicy::Random { seed: 1 });
        let c = partition_groups(&g, 4, PartitionPolicy::Random { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a.ranks, c.ranks);
    }

    #[test]
    fn random_within_groups_preserves_group_layout() {
        let g = Grouping {
            order: (0..10).collect(),
            group_sizes: vec![5, 5],
        };
        let p = partition_groups(&g, 1, PartitionPolicy::RandomWithinGroups { seed: 3 });
        let all = &p.rank(0);
        // First 5 positions hold a permutation of group 1 (ids 0..5).
        let mut first: Vec<u32> = all[..5].to_vec();
        first.sort_unstable();
        assert_eq!(first, vec![0, 1, 2, 3, 4]);
        let mut second: Vec<u32> = all[5..].to_vec();
        second.sort_unstable();
        assert_eq!(second, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn random_global_shuffle_crosses_group_boundaries() {
        // With 20 groups of 5 and 2 ranks, a global shuffle will (for any
        // reasonable seed) put members of early groups on the late rank.
        let g = Grouping {
            order: (0..100).collect(),
            group_sizes: vec![5; 20],
        };
        let p = partition_groups(&g, 2, PartitionPolicy::Random { seed: 3 });
        p.validate(100).unwrap();
        let rank1_has_early = p.rank(1).iter().any(|&id| id < 5);
        assert!(
            rank1_has_early,
            "global shuffle should move early ids to rank 1"
        );
    }

    #[test]
    fn random_within_groups_acts_like_chunk_for_small_groups() {
        // The ablation: tiny groups + big chunks → same assignment as Chunk
        // up to intra-group permutation, so the same *set* per rank.
        let g = Grouping {
            order: (0..100).collect(),
            group_sizes: vec![5; 20],
        };
        let chunk = partition_groups(&g, 2, PartitionPolicy::Chunk);
        let rwg = partition_groups(&g, 2, PartitionPolicy::RandomWithinGroups { seed: 9 });
        for m in 0..2 {
            let mut a = chunk.rank(m).to_vec();
            let mut b = rwg.rank(m).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "rank {m} sets differ");
        }
    }

    #[test]
    fn nondivisible_counts_balanced() {
        for policy in [
            PartitionPolicy::Chunk,
            PartitionPolicy::Cyclic,
            PartitionPolicy::Random { seed: 0 },
        ] {
            let p = partition_groups(&grouping(13), 4, policy);
            p.validate(13).unwrap();
            let (min, max) = p.load_spread();
            assert!(max - min <= 1, "{policy}: {min}..{max}");
        }
    }

    #[test]
    fn single_rank_gets_everything() {
        for policy in [PartitionPolicy::Chunk, PartitionPolicy::Cyclic] {
            let p = partition_groups(&grouping(8), 1, policy);
            assert_eq!(p.total(), 8);
            assert_eq!(p.num_ranks(), 1);
            p.validate(8).unwrap();
        }
    }

    #[test]
    fn more_ranks_than_peptides() {
        let p = partition_groups(&grouping(3), 8, PartitionPolicy::Cyclic);
        p.validate(3).unwrap();
        assert_eq!(p.total(), 3);
        assert!(p.ranks.iter().filter(|r| r.is_empty()).count() == 5);
    }

    #[test]
    fn empty_grouping() {
        let g = Grouping {
            order: vec![],
            group_sizes: vec![],
        };
        let p = partition_groups(&g, 4, PartitionPolicy::Chunk);
        p.validate(0).unwrap();
        assert_eq!(p.total(), 0);
    }

    #[test]
    fn cyclic_spreads_family_across_all_ranks() {
        // The property LBE exists for: a group of 2p similar peptides puts
        // exactly 2 members on every rank under Cyclic, but all on one or
        // two ranks under Chunk.
        let variants = [b'A', b'C', b'D', b'E', b'F', b'G', b'H', b'I'];
        let fam: Vec<String> = variants
            .iter()
            .map(|&c| format!("AAAGGG{}K", c as char))
            .collect();
        let refs: Vec<&str> = fam.iter().map(String::as_str).collect();
        let db = PeptideDb::from_vec(
            refs.iter()
                .map(|s| Peptide::new(s.as_bytes(), 0, 0).unwrap())
                .collect(),
        );
        let g = group_peptides(
            &db,
            &GroupingParams {
                criterion: GroupingCriterion::Absolute { d: 2 },
                gsize: 20,
            },
        );
        assert_eq!(g.num_groups(), 1);
        let cyc = partition_groups(&g, 4, PartitionPolicy::Cyclic);
        assert!(cyc.ranks.iter().all(|r| r.len() == 2));
        let chk = partition_groups(&g, 4, PartitionPolicy::Chunk);
        assert!(chk.ranks.iter().all(|r| r.len() == 2)); // counts equal...
                                                         // ...but chunk keeps lexicographic neighbours together:
        assert_eq!(chk.rank(0), &[g.order[0], g.order[1]]);
    }

    #[test]
    fn validate_catches_bad_partitions() {
        let p = Partition {
            ranks: vec![vec![0, 1], vec![1]],
            policy: PartitionPolicy::Chunk,
        };
        assert!(p.validate(2).is_err()); // duplicate
        let p = Partition {
            ranks: vec![vec![0]],
            policy: PartitionPolicy::Chunk,
        };
        assert!(p.validate(2).is_err()); // missing id 1
        let p = Partition {
            ranks: vec![vec![5]],
            policy: PartitionPolicy::Chunk,
        };
        assert!(p.validate(2).is_err()); // out of range
    }

    #[test]
    fn display_names() {
        assert_eq!(PartitionPolicy::Chunk.to_string(), "chunk");
        assert_eq!(PartitionPolicy::Cyclic.to_string(), "cyclic");
        assert_eq!(
            PartitionPolicy::Random { seed: 5 }.to_string(),
            "random(seed=5)"
        );
        assert_eq!(
            PartitionPolicy::RandomWithinGroups { seed: 2 }.to_string(),
            "random-within-groups(seed=2)"
        );
    }

    #[test]
    fn weighted_equal_weights_matches_cyclic_counts() {
        let g = grouping(20);
        let w = partition_weighted_cyclic(&g, &[1.0; 4]);
        w.validate(20).unwrap();
        let (min, max) = w.load_spread();
        assert!(max - min <= 1);
    }

    #[test]
    fn weighted_shares_proportional() {
        let g = grouping(100);
        let w = partition_weighted_cyclic(&g, &[2.0, 1.0, 1.0]);
        w.validate(100).unwrap();
        assert_eq!(w.rank(0).len(), 50);
        assert_eq!(w.rank(1).len(), 25);
        assert_eq!(w.rank(2).len(), 25);
    }

    #[test]
    fn weighted_interleaves_like_cyclic() {
        // With equal weights, the fast deterministic rule deals in a
        // rotating pattern — early ids spread across all ranks.
        let g = grouping(12);
        let w = partition_weighted_cyclic(&g, &[1.0, 1.0, 1.0]);
        for m in 0..3 {
            assert!(
                w.rank(m).iter().any(|&id| id < 3),
                "rank {m} got no early id"
            );
        }
    }

    #[test]
    fn weighted_is_deterministic() {
        let g = grouping(37);
        let a = partition_weighted_cyclic(&g, &[1.0, 0.5, 0.25]);
        let b = partition_weighted_cyclic(&g, &[1.0, 0.5, 0.25]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_rejects_nonpositive() {
        partition_weighted_cyclic(&grouping(4), &[1.0, 0.0]);
    }
}
