//! Evaluation metrics: speedup, efficiency, Amdahl bound, and the paper's
//! load-balance speedup (Fig. 11).

use lbe_cluster::sim::ImbalanceSummary;

/// Speedup relative to a base configuration, following the paper's Fig. 8
/// methodology: the base case is assumed to run at ideal efficiency, so
/// `speedup(p) = base_ranks × T(base) / T(p)`.
///
/// (The paper could not run on 1 rank — partition size per MPI process was
/// capped at 10.5 M spectra — so it uses 2 CPUs as base for the 18 M index
/// and 4 CPUs for the larger ones.)
pub fn speedup(base_ranks: usize, base_time: f64, time: f64) -> f64 {
    assert!(base_time >= 0.0 && time > 0.0, "times must be positive");
    base_ranks as f64 * base_time / time
}

/// Parallel efficiency: `speedup / ranks` (1.0 = ideal).
pub fn efficiency(speedup: f64, ranks: usize) -> f64 {
    assert!(ranks >= 1);
    speedup / ranks as f64
}

/// Amdahl's law: the speedup bound for a program with serial fraction `s`
/// on `p` processors. The reference curve behind Fig. 10's saturation.
pub fn amdahl_speedup(serial_fraction: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&serial_fraction), "fraction in [0,1]");
    assert!(p >= 1);
    1.0 / (serial_fraction + (1.0 - serial_fraction) / p as f64)
}

/// The paper's Fig. 11 quantity: CPU-time speedup of an LBE policy over the
/// conventional chunk partitioning, derived from wasted CPU time
/// `Twst = N·ΔTmax` (§VI). With equal `Tavg` (same total work), the ratio
/// reduces to `ΔTmax(chunk) / ΔTmax(policy)` = `LI(chunk) / LI(policy)`.
///
/// Returns 1.0 when both are perfectly balanced, and `f64::INFINITY` when
/// only the policy is (chunk wasted time, policy wasted none).
pub fn lb_speedup_over_chunk(chunk: &ImbalanceSummary, policy: &ImbalanceSummary) -> f64 {
    let eps = 1e-12;
    if chunk.delta_t_max <= eps && policy.delta_t_max <= eps {
        return 1.0;
    }
    if policy.delta_t_max <= eps {
        return f64::INFINITY;
    }
    chunk.delta_t_max / policy.delta_t_max
}

/// Wall-clock-apparent slowdown vs true CPU-time waste (the §VI discussion:
/// an 80 s stall on 16 CPUs *looks* like 0.8× but wastes 12.8 CPU-normalized
/// units). Returns `(apparent_slowdown, cpu_time_waste_normalized)`.
pub fn stall_amplification(summary: &ImbalanceSummary, ranks: usize) -> (f64, f64) {
    let apparent = if summary.t_avg > 0.0 {
        summary.delta_t_max / summary.t_avg
    } else {
        0.0
    };
    let cpu_waste = if summary.t_avg > 0.0 {
        summary.wasted_cpu_time(ranks) / summary.t_avg
    } else {
        0.0
    };
    (apparent, cpu_waste)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(times: &[f64]) -> ImbalanceSummary {
        ImbalanceSummary::from_times(times)
    }

    #[test]
    fn speedup_ideal_base() {
        // Base: 4 ranks at 100 s. At 8 ranks, 50 s → speedup 8.
        assert!((speedup(4, 100.0, 50.0) - 8.0).abs() < 1e-12);
        // Perfect efficiency at the base itself.
        assert!((speedup(4, 100.0, 100.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_of_linear_scaling() {
        assert!((efficiency(8.0, 8) - 1.0).abs() < 1e-12);
        assert!((efficiency(4.0, 8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amdahl_limits() {
        assert!((amdahl_speedup(0.0, 16) - 16.0).abs() < 1e-12);
        assert!((amdahl_speedup(1.0, 16) - 1.0).abs() < 1e-12);
        // 10% serial on 16 CPUs ≈ 6.4×
        let s = amdahl_speedup(0.1, 16);
        assert!((s - 6.4).abs() < 0.01, "{s}");
        // Monotone in p, bounded by 1/s.
        assert!(amdahl_speedup(0.1, 32) > s);
        assert!(amdahl_speedup(0.1, 1_000_000) < 10.0);
    }

    #[test]
    fn lb_speedup_matches_paper_magnitudes() {
        // Chunk LI ~120%, cyclic ~14% → ~8.6×, the paper's average.
        let chunk = summary(&[100.0, 100.0, 100.0, 220.0]); // ΔT=90, Tavg=130
        let t_avg = chunk.t_avg;
        let cyclic = ImbalanceSummary {
            delta_t_max: t_avg * 0.14,
            ..chunk
        };
        let chunk_adj = ImbalanceSummary {
            delta_t_max: t_avg * 1.2,
            ..chunk
        };
        let s = lb_speedup_over_chunk(&chunk_adj, &cyclic);
        assert!((s - 1.2 / 0.14).abs() < 1e-9);
    }

    #[test]
    fn lb_speedup_edge_cases() {
        let balanced = summary(&[10.0, 10.0]);
        let skewed = summary(&[5.0, 15.0]);
        assert_eq!(lb_speedup_over_chunk(&balanced, &balanced), 1.0);
        assert_eq!(lb_speedup_over_chunk(&skewed, &balanced), f64::INFINITY);
        assert!(lb_speedup_over_chunk(&skewed, &skewed) - 1.0 < 1e-9);
    }

    #[test]
    fn stall_amplification_paper_example() {
        // §VI: N=16, ΔTmax=80 over Tavg=100 → apparent 0.8×, wasted 12.8×.
        let s = ImbalanceSummary {
            t_avg: 100.0,
            t_max: 180.0,
            t_min: 95.0,
            delta_t_max: 80.0,
            load_imbalance: 0.8,
        };
        let (apparent, waste) = stall_amplification(&s, 16);
        assert!((apparent - 0.8).abs() < 1e-12);
        assert!((waste - 12.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_time_rejected() {
        speedup(2, 10.0, 0.0);
    }
}
