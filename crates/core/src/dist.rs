//! Backend-agnostic distributed drivers: the cluster-facing entry points
//! for running LBE's SPMD programs over *any* [`Communicator`] — the
//! threaded simulator or a real TCP cluster of OS processes.
//!
//! [`crate::engine::run_distributed_search`] owns the simulator path: it
//! creates the thread cluster itself and assembles the report from thread
//! joins. The functions here are the complement for externally-created
//! communicators (one per process): every rank calls the same function with
//! the same inputs, the function runs the rank's share, and rank 0 — and
//! only rank 0 — gets the assembled result back. All rank-agreed state
//! (partition, mapping table, serial-cost estimate) is recomputed
//! deterministically per rank from the shared inputs, so no coordination
//! traffic is spent on it and sim/TCP runs agree bit-for-bit.
//!
//! Communication failures surface as [`CommError`] with rank/tag context;
//! nothing in this module panics on a dead or misbehaving peer.

use crate::engine::{self, DistributedSearchReport, EngineConfig, RankReturn, RankReturnWire};
use crate::grouping::Grouping;
use crate::mapping::MappingTable;
use lbe_bio::peptide::PeptideDb;
use lbe_cluster::{CommError, Communicator};
use lbe_index::IndexBuilder;
use lbe_spectra::spectrum::Spectrum;
use std::io::Write;

/// One rank's partial index, shipped to rank 0 as a v2 `LBESLM2` container
/// blob — already checksummed and 64-byte-aligned, so the receiver can
/// verify and map it zero-copy.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBlob {
    /// Producing rank.
    pub rank: usize,
    /// Peptides in this rank's partition.
    pub peptides: usize,
    /// Indexed theoretical spectra.
    pub spectra: usize,
    /// Indexed fragment ions (postings).
    pub ions: usize,
    /// The serialized v2 container.
    pub blob: Vec<u8>,
}

/// Runs one rank of the distributed batch search over an
/// externally-created communicator. Every rank must call this with
/// identical `(db, grouping, queries, cfg)`; returns `Some(report)` on
/// rank 0, `None` elsewhere.
///
/// Results are identical to [`crate::engine::run_distributed_search`] with
/// the same inputs and rank count — the same `rank_program` runs; only the
/// transport underneath (and therefore whether the report's times are
/// virtual or wall-clock) differs.
pub fn cluster_search_rank(
    comm: &mut Communicator,
    db: &PeptideDb,
    grouping: &Grouping,
    queries: &[Spectrum],
    cfg: &EngineConfig,
) -> Result<Option<DistributedSearchReport>, CommError> {
    let ranks = comm.size();
    let partition = engine::make_partition(grouping, cfg, ranks);
    let mapping = MappingTable::from_partition(&partition);
    let serial_seconds = engine::serial_seconds(db, queries, cfg);

    let (rr, merged) =
        engine::rank_program(comm, db, &partition, &mapping, queries, cfg, serial_seconds)?;

    // Report assembly: what the simulator collects via thread joins travels
    // over the wire here — each rank's counters, then its final clock
    // (capturing the gather itself in the totals, like a thread join does).
    let gathered_rr = comm.try_gather(0, rr.to_wire(), std::mem::size_of::<RankReturnWire>())?;
    let now = comm.now();
    let gathered_times = comm.try_gather(0, now, std::mem::size_of::<f64>())?;

    let Some(rrs) = gathered_rr else {
        return Ok(None);
    };
    let rank_returns: Vec<RankReturn> = rrs.into_iter().map(RankReturn::from_wire).collect();
    let total_times = gathered_times.expect("rank 0 holds gathered times");
    let psms = merged.expect("rank 0 holds merged PSMs");
    Ok(Some(engine::report_from_parts(
        &partition,
        &mapping,
        cfg,
        serial_seconds,
        rank_returns,
        total_times,
        psms,
        None,
    )))
}

/// Like [`cluster_search_rank`], but rank 0 *supervises*: a worker that
/// dies mid-run (or stays unreachable after the communicator's retry
/// policy is exhausted) is detected through typed
/// [`CommError::Disconnected`] / [`CommError::Timeout`] failures, its
/// query share is re-executed deterministically on the master, and the
/// run completes with results **byte-identical** to a failure-free run.
/// What happened is recorded in
/// [`DistributedSearchReport::recovery`](crate::engine::RecoveryReport):
/// ranks lost, queries re-executed, and recovery wall time.
///
/// Workers behave exactly as in [`cluster_search_rank`] — supervision is
/// entirely master-side, so the wire pattern (and with it sim/TCP
/// equivalence) is unchanged. A supervised run with no failures returns
/// `recovery = Some(report)` with an empty `ranks_lost`.
pub fn cluster_search_rank_supervised(
    comm: &mut Communicator,
    db: &PeptideDb,
    grouping: &Grouping,
    queries: &[Spectrum],
    cfg: &EngineConfig,
) -> Result<Option<DistributedSearchReport>, CommError> {
    if !comm.is_master() {
        return cluster_search_rank(comm, db, grouping, queries, cfg);
    }
    let ranks = comm.size();
    let partition = engine::make_partition(grouping, cfg, ranks);
    let mapping = MappingTable::from_partition(&partition);
    let serial_seconds = engine::serial_seconds(db, queries, cfg);
    engine::supervised_master_program(comm, db, &partition, &mapping, queries, cfg, serial_seconds)
        .map(Some)
}

/// Runs one rank of the distributed index build: extracts this rank's
/// LBE-scattered peptide partition, builds the partial SLM index locally,
/// serializes it as a v2 container, and gathers all shards at rank 0.
/// Returns `Some(shards)` (rank-ordered) there, `None` elsewhere.
///
/// Deterministic in its inputs: every byte of every shard depends only on
/// `(db, grouping, cfg, ranks)`, so sim- and TCP-built shards are
/// byte-identical.
pub fn cluster_build_rank(
    comm: &mut Communicator,
    db: &PeptideDb,
    grouping: &Grouping,
    cfg: &EngineConfig,
) -> Result<Option<Vec<ShardBlob>>, CommError> {
    let ranks = comm.size();
    let me = comm.rank();
    let partition = engine::make_partition(grouping, cfg, ranks);

    let local_db = engine::extract_local_db(db, &partition, me, cfg);
    comm.compute(cfg.cost.per_peptide_extract_s * db.len() as f64);
    let mut builder = IndexBuilder::new(cfg.slm.clone(), cfg.modspec.clone());
    let index = builder.build_parallel(&local_db, cfg.threads_per_rank);
    comm.compute(cfg.cost.build_seconds(index.num_ions()));

    let mut blob = Vec::new();
    lbe_index::write_index(&mut blob, &index).map_err(|e| CommError::Setup {
        rank: me,
        detail: format!("cannot serialize rank {me} shard: {e}"),
    })?;

    let meta = (local_db.len(), index.num_spectra(), index.num_ions());
    let sim_bytes = blob.len();
    let gathered = comm.try_gather(0, (meta, blob), sim_bytes)?;
    // Keep collective call counts identical on all ranks before returning.
    comm.try_barrier()?;

    Ok(gathered.map(|shards| {
        shards
            .into_iter()
            .enumerate()
            .map(|(rank, ((peptides, spectra, ions), blob))| ShardBlob {
                rank,
                peptides,
                spectra,
                ions,
                blob,
            })
            .collect()
    }))
}

/// Writes gathered shards to `dir` as `shard-NNNN.slm2` plus a
/// `manifest.tsv` (rank, peptides, spectra, ions, bytes per line). Returns
/// the manifest text, which is deterministic for deterministic shards.
pub fn write_shards(dir: &std::path::Path, shards: &[ShardBlob]) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = String::from("rank\tpeptides\tspectra\tions\tbytes\n");
    for s in shards {
        let path = dir.join(format!("shard-{:04}.slm2", s.rank));
        std::fs::write(&path, &s.blob)?;
        manifest.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            s.rank,
            s.peptides,
            s.spectra,
            s.ions,
            s.blob.len()
        ));
    }
    let mut f = std::fs::File::create(dir.join("manifest.tsv"))?;
    f.write_all(manifest.as_bytes())?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{group_peptides, GroupingParams};
    use crate::partition::PartitionPolicy;
    use lbe_bio::mods::ModSpec;
    use lbe_bio::peptide::Peptide;
    use lbe_cluster::{Cluster, ClusterConfig};
    use lbe_spectra::synthetic::{SyntheticDataset, SyntheticDatasetParams};

    fn fixture() -> (PeptideDb, Grouping, Vec<Spectrum>) {
        let seqs = [
            "ELVISLIVESK",
            "ELVISLIVESR",
            "PEPTIDEK",
            "PEPTIDER",
            "SAMPLERK",
            "SAMPLERR",
            "MNKQMGGR",
            "WWYYFFHHK",
        ];
        let db = PeptideDb::from_vec(
            seqs.iter()
                .map(|s| Peptide::new(s.as_bytes(), 0, 0).unwrap())
                .collect(),
        );
        let grouping = group_peptides(&db, &GroupingParams::default());
        let queries = SyntheticDataset::generate(
            &db,
            &ModSpec::none(),
            &SyntheticDatasetParams {
                num_spectra: 10,
                ..Default::default()
            },
            11,
        );
        (db, grouping, queries.spectra)
    }

    #[test]
    fn sim_cluster_search_matches_engine_entry_point() {
        let (db, grouping, queries) = fixture();
        let cfg = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        let direct = engine::run_distributed_search(&db, &grouping, &queries, &cfg, 3);
        let via_dist = Cluster::new(ClusterConfig::new(3))
            .run(|comm| cluster_search_rank(comm, &db, &grouping, &queries, &cfg).unwrap());
        let report = via_dist.results[0].as_ref().expect("rank 0 report");
        assert!(via_dist.results[1..].iter().all(Option::is_none));
        assert_eq!(report.psms, direct.psms);
        assert_eq!(report.partition_sizes, direct.partition_sizes);
        assert_eq!(report.total_candidates, direct.total_candidates);
        assert_eq!(report.per_rank_stats, direct.per_rank_stats);
        assert_eq!(report.rank_query_times, direct.rank_query_times);
    }

    #[test]
    fn sim_cluster_build_shards_load_and_cover_db() {
        let (db, grouping, _) = fixture();
        let cfg = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        let out = Cluster::new(ClusterConfig::new(3))
            .run(|comm| cluster_build_rank(comm, &db, &grouping, &cfg).unwrap());
        let shards = out.results[0].as_ref().expect("rank 0 shards");
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(|s| s.peptides).sum::<usize>(), db.len());
        for s in shards {
            let idx =
                lbe_index::read_index_bytes(&s.blob, &lbe_index::ReadOptions::default()).unwrap();
            assert_eq!(idx.num_spectra(), s.spectra);
            assert_eq!(idx.num_ions(), s.ions);
        }
    }

    #[test]
    fn build_is_deterministic_across_runs() {
        let (db, grouping, _) = fixture();
        let cfg = EngineConfig::with_policy(PartitionPolicy::Cyclic);
        let run = || {
            Cluster::new(ClusterConfig::new(2))
                .run(|comm| cluster_build_rank(comm, &db, &grouping, &cfg).unwrap())
                .results
                .remove(0)
                .expect("rank 0 shards")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "shard bytes must be deterministic");
    }

    #[test]
    fn write_shards_produces_manifest() {
        let (db, grouping, _) = fixture();
        let cfg = EngineConfig::with_policy(PartitionPolicy::Chunk);
        let out = Cluster::new(ClusterConfig::new(2))
            .run(|comm| cluster_build_rank(comm, &db, &grouping, &cfg).unwrap());
        let shards = out.results[0].as_ref().expect("shards");
        let dir = std::env::temp_dir().join("lbe_dist_write_shards_test");
        std::fs::remove_dir_all(&dir).ok();
        let manifest = write_shards(&dir, shards).unwrap();
        assert_eq!(manifest.lines().count(), 3); // header + 2 ranks
        for rank in 0..2 {
            let p = dir.join(format!("shard-{rank:04}.slm2"));
            assert!(lbe_index::read_index_path(&p).is_ok());
        }
        assert_eq!(
            std::fs::read_to_string(dir.join("manifest.tsv")).unwrap(),
            manifest
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
