//! # lbe-core — the LBE load-balancing algorithm
//!
//! The paper's contribution, end to end:
//!
//! * [`distance`] — edit distance (full DP and banded-with-cutoff, the inner
//!   loop of Algorithm 1);
//! * [`grouping`] — Algorithm 1: sort peptides by length then
//!   lexicographically, greedily grow groups of similar sequences under one
//!   of two configurable criteria;
//! * [`partition`] — the three distribution policies (§III-D): **Chunk**
//!   (the shared-memory baseline), **Cyclic**, and **Random**;
//! * [`mapping`] — the master's O(1) virtual-index → original-entry mapping
//!   table (§III-D, Fig. 4);
//! * [`engine`] — the distributed build + query orchestration on top of
//!   `lbe-cluster` (§III-E);
//! * [`dist`] — the same SPMD programs as rank-callable entry points for
//!   externally-created communicators (real TCP clusters of OS processes),
//!   plus the distributed index build shipping v2 container shards;
//! * [`ingest`] — streaming ingest of real data files (FASTA proteomes and
//!   MGF/MS2/mzML query sets) into the engine's in-memory inputs;
//! * [`metrics`] — Load Imbalance, wasted CPU time, speedup and efficiency
//!   calculations used by the paper's evaluation;
//! * [`pipeline`] — one-call end-to-end runs for examples and the figure
//!   harness;
//! * [`serve`] — the long-lived query daemon: a resident engine, a
//!   length-prefixed wire protocol, and batched query waves.
//!
//! ```
//! use lbe_core::prelude::*;
//! use lbe_bio::prelude::*;
//!
//! // A small end-to-end distributed search.
//! let report = PipelineBuilder::small_demo().run(42);
//! assert!(report.search.imbalance.load_imbalance >= 0.0);
//! assert_eq!(report.search.rank_query_times.len(), 4);
//! ```

#![deny(missing_docs)]

pub mod dist;
pub mod distance;
pub mod engine;
pub mod fdr;
pub mod grouping;
pub mod ingest;
pub mod mapping;
pub mod metrics;
pub mod partition;
pub mod pipeline;
pub mod serve;
pub mod spectral_grouping;

pub use dist::{
    cluster_build_rank, cluster_search_rank, cluster_search_rank_supervised, write_shards,
    ShardBlob,
};
pub use distance::{edit_distance, edit_distance_bounded};
pub use engine::{
    DistributedSearchReport, EngineConfig, GlobalPsm, RecoveryReport, SearchCostModel,
    SerialCostModel,
};
pub use fdr::{accepted_at, compute_q_values, QValued, ScoredId};
pub use grouping::{
    group_peptides, group_peptides_by_mass, Grouping, GroupingCriterion, GroupingParams,
};
pub use ingest::{load_peptide_db, load_proteome_digested, load_queries, IngestStats};
pub use mapping::MappingTable;
pub use metrics::{amdahl_speedup, efficiency, lb_speedup_over_chunk, speedup};
pub use partition::{partition_groups, partition_weighted_cyclic, Partition, PartitionPolicy};
pub use pipeline::{PipelineBuilder, PipelineReport};
pub use serve::{serve_stdin, ResidentEngine, ServeConfig, ServeStats, Server, ShutdownHandle};
pub use spectral_grouping::{group_spectra, jaccard, SpectralGroupingParams};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::distance::{edit_distance, edit_distance_bounded};
    pub use crate::engine::{DistributedSearchReport, EngineConfig, SearchCostModel};
    pub use crate::grouping::{group_peptides, Grouping, GroupingCriterion, GroupingParams};
    pub use crate::mapping::MappingTable;
    pub use crate::metrics::{efficiency, lb_speedup_over_chunk, speedup};
    pub use crate::partition::{partition_groups, Partition, PartitionPolicy};
    pub use crate::pipeline::{PipelineBuilder, PipelineReport};
}
