//! The resident search engine: indexes opened once, searched many times.
//!
//! This is the engine split the one-shot CLI path needed: opening (magic
//! sniff → [`ChunkStore`] or [`SlmIndex`], always under full validation)
//! lives here, shared by `lbe search` and `lbe serve`, and search entry
//! points take per-request [`QueryOptions`] so a daemon can serve mixed
//! scan-mode/tolerance/top-k requests from one resident index.
//!
//! Thread-safety model: the chunked backend's LRU residency makes
//! [`ChunkStore::search_with_opts`] `&mut self`, so it sits behind a
//! `Mutex` and waves run sequentially under the lock; the single-index
//! backend is immutable and fans a wave out across `minipool` workers via
//! [`search_batch_parallel_with_opts`], recycling one scratch allocation
//! for the sequential path.

use lbe_index::io::{ReadOptions, MAGIC_CHUNKED};
use lbe_index::{
    search_batch_parallel_with_opts, ChunkStore, QueryOptions, SearchResult, SearchScratch,
    Searcher, SlmIndex,
};
use lbe_spectra::preprocess::{preprocess_spectrum, PreprocessParams};
use lbe_spectra::spectrum::Spectrum;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Mutex;

/// A search backend resident in memory for the lifetime of the engine.
enum Backend {
    /// Lazily-resident chunked container; `&mut` search ⇒ mutex-guarded.
    Chunked(Mutex<Box<ChunkStore>>),
    /// A fully-resident single index plus one recycled scratch state.
    Single {
        index: Box<SlmIndex>,
        scratch: Mutex<SearchScratch>,
    },
}

/// An index opened once and kept hot across many queries.
///
/// All search entry points take `&self`: the engine may be shared across
/// connection threads behind an `Arc` with no external locking.
pub struct ResidentEngine {
    backend: Backend,
    preprocess: PreprocessParams,
}

impl ResidentEngine {
    /// Opens the index at `path`: a directory is a generation store (see
    /// `lbe_index::lifecycle`); a file is sniffed by its 8-byte magic to
    /// pick the chunked or single-file reader. `max_resident` caps how
    /// many chunks of a chunked backend stay in memory (`usize::MAX` =
    /// all).
    ///
    /// Files handed to a server are untrusted input, so the full
    /// validation scan always runs; any failure is returned *before* a
    /// listener could exist — a corrupt index can never half-start a
    /// server.
    pub fn open(path: impl AsRef<Path>, max_resident: usize) -> io::Result<Self> {
        let path = path.as_ref();
        let opts = ReadOptions {
            full_validation: true,
        };
        if path.is_dir() {
            let store = ChunkStore::open_generation_dir_with(path, max_resident, &opts)?;
            return Ok(ResidentEngine {
                backend: Backend::Chunked(Mutex::new(Box::new(store))),
                preprocess: PreprocessParams::default(),
            });
        }
        let mut magic = [0u8; 8];
        std::fs::File::open(path)?.read_exact(&mut magic)?;
        let backend = if &magic == MAGIC_CHUNKED {
            Backend::Chunked(Mutex::new(Box::new(ChunkStore::open_path_with(
                path,
                max_resident,
                &opts,
            )?)))
        } else {
            let index = Box::new(lbe_index::read_index_path_with(path, &opts)?);
            Backend::Single {
                index,
                scratch: Mutex::new(SearchScratch::default()),
            }
        };
        Ok(ResidentEngine {
            backend,
            preprocess: PreprocessParams::default(),
        })
    }

    /// Applies the engine's standard spectrum preprocessing — the same
    /// [`PreprocessParams::default`] pipeline file ingest uses — so a raw
    /// wire spectrum searches bit-identically to the same spectrum read
    /// from an MGF/MS2/mzML file.
    pub fn preprocess(&self, raw: &Spectrum) -> Spectrum {
        preprocess_spectrum(raw, &self.preprocess)
    }

    /// Searches one (already preprocessed) spectrum under `opts`.
    pub fn search_one(&self, query: &Spectrum, opts: &QueryOptions) -> io::Result<SearchResult> {
        match &self.backend {
            Backend::Chunked(store) => store
                .lock()
                .expect("chunk store lock poisoned")
                .search_with_opts(query, opts),
            Backend::Single { index, scratch } => {
                let mut guard = scratch.lock().expect("scratch lock poisoned");
                let mut searcher = Searcher::with_scratch(index, std::mem::take(&mut guard));
                let result = searcher.search_with_opts(query, opts);
                *guard = searcher.into_scratch();
                Ok(result)
            }
        }
    }

    /// Searches one wave of `(spectrum, options)` jobs, returning results
    /// in job order.
    ///
    /// The single-index backend groups jobs by identical options and runs
    /// each group as one [`search_batch_parallel_with_opts`] batch on
    /// `num_threads` pool workers; the chunked backend takes the store
    /// lock once and answers the wave sequentially (its LRU state is the
    /// shared mutable resource). Either way every result is bit-identical
    /// to [`ResidentEngine::search_one`] on the same job.
    pub fn search_wave(
        &self,
        jobs: &[(Spectrum, QueryOptions)],
        num_threads: usize,
    ) -> Vec<io::Result<SearchResult>> {
        match &self.backend {
            Backend::Chunked(store) => {
                let mut guard = store.lock().expect("chunk store lock poisoned");
                jobs.iter()
                    .map(|(q, opts)| guard.search_with_opts(q, opts))
                    .collect()
            }
            Backend::Single { index, .. } => {
                // Group job indices by options; each distinct options set
                // becomes one parallel batch. Waves are small (bounded by
                // the server's max_wave), so a linear scan suffices.
                let mut groups: Vec<(QueryOptions, Vec<usize>)> = Vec::new();
                for (i, (_, opts)) in jobs.iter().enumerate() {
                    match groups.iter_mut().find(|(o, _)| o == opts) {
                        Some((_, idxs)) => idxs.push(i),
                        None => groups.push((*opts, vec![i])),
                    }
                }
                let mut out: Vec<Option<io::Result<SearchResult>>> =
                    (0..jobs.len()).map(|_| None).collect();
                for (opts, idxs) in groups {
                    let batch: Vec<Spectrum> = idxs.iter().map(|&i| jobs[i].0.clone()).collect();
                    let (results, _stats) =
                        search_batch_parallel_with_opts(index, &batch, num_threads, &opts);
                    for (&i, r) in idxs.iter().zip(results) {
                        out[i] = Some(Ok(r));
                    }
                }
                out.into_iter()
                    .map(|r| r.expect("every job grouped exactly once"))
                    .collect()
            }
        }
    }

    /// Like [`ResidentEngine::search_wave`], but bounded by a wall-clock
    /// `deadline`: jobs the engine did not *start* before the deadline are
    /// returned as `None` (degraded — the caller reports them as partial
    /// results) instead of stalling the wave indefinitely. `deadline:
    /// None` behaves exactly like `search_wave`.
    ///
    /// Granularity is per job (chunked backend) or per options-group batch
    /// (single backend): a search already dispatched runs to completion —
    /// the deadline bounds *queueing*, it does not abort compute mid-query.
    /// Jobs that do run produce results bit-identical to `search_one`.
    pub fn search_wave_deadline(
        &self,
        jobs: &[(Spectrum, QueryOptions)],
        num_threads: usize,
        deadline: Option<std::time::Instant>,
    ) -> Vec<Option<io::Result<SearchResult>>> {
        let Some(deadline) = deadline else {
            return self
                .search_wave(jobs, num_threads)
                .into_iter()
                .map(Some)
                .collect();
        };
        let expired = || std::time::Instant::now() >= deadline;
        match &self.backend {
            Backend::Chunked(store) => {
                let mut guard = store.lock().expect("chunk store lock poisoned");
                jobs.iter()
                    .map(|(q, opts)| (!expired()).then(|| guard.search_with_opts(q, opts)))
                    .collect()
            }
            Backend::Single { index, .. } => {
                let mut groups: Vec<(QueryOptions, Vec<usize>)> = Vec::new();
                for (i, (_, opts)) in jobs.iter().enumerate() {
                    match groups.iter_mut().find(|(o, _)| o == opts) {
                        Some((_, idxs)) => idxs.push(i),
                        None => groups.push((*opts, vec![i])),
                    }
                }
                let mut out: Vec<Option<io::Result<SearchResult>>> =
                    (0..jobs.len()).map(|_| None).collect();
                for (opts, idxs) in groups {
                    if expired() {
                        continue; // whole group degraded
                    }
                    let batch: Vec<Spectrum> = idxs.iter().map(|&i| jobs[i].0.clone()).collect();
                    let (results, _stats) =
                        search_batch_parallel_with_opts(index, &batch, num_threads, &opts);
                    for (&i, r) in idxs.iter().zip(results) {
                        out[i] = Some(Ok(r));
                    }
                }
                out
            }
        }
    }

    /// For a generation-store backend: picks up the latest generation if
    /// `CURRENT` has moved, keeping resident chunks whose content hashes
    /// survive — connections stay open and only changed chunks re-fault.
    /// Returns `true` when a newer generation was adopted; `Ok(false)` for
    /// file-backed backends.
    pub fn refresh(&self) -> io::Result<bool> {
        match &self.backend {
            Backend::Chunked(store) => store
                .lock()
                .expect("chunk store lock poisoned")
                .refresh_generation(),
            Backend::Single { .. } => Ok(false),
        }
    }

    /// Number of indexed spectra, when the backend can report it cheaply
    /// (`None` for a chunked container, matching the one-shot CLI).
    pub fn num_indexed(&self) -> Option<usize> {
        match &self.backend {
            Backend::Chunked(_) => None,
            Backend::Single { index, .. } => Some(index.num_spectra()),
        }
    }

    /// Chunk count of the served container; 0 for a single index.
    pub fn num_chunks(&self) -> usize {
        match &self.backend {
            Backend::Chunked(store) => store
                .lock()
                .expect("chunk store lock poisoned")
                .num_chunks(),
            Backend::Single { .. } => 0,
        }
    }

    /// The backend description the one-shot CLI prints in its summary
    /// line, byte-identical to the pre-split strings.
    pub fn backend_summary(&self) -> String {
        match &self.backend {
            Backend::Chunked(store) => {
                let guard = store.lock().expect("chunk store lock poisoned");
                let s = guard.stats();
                format!(
                    "chunked container ({} chunks, {} faults, {} evictions)",
                    guard.num_chunks(),
                    s.faults,
                    s.evictions
                )
            }
            Backend::Single { .. } => "single index".to_string(),
        }
    }
}
