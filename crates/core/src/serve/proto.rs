//! The serve wire protocol: length-prefixed frames over any byte stream.
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! (`1..=`[`MAX_FRAME_LEN`]) followed by that many payload bytes. The first
//! payload byte is the message kind; the rest is a fixed little-endian
//! field layout per kind (documented on [`Request`] and [`Response`]).
//!
//! Decoding arbitrary bytes must be *safe*: every malformed input returns a
//! clean [`ProtoError`] — never a panic, never an allocation driven by a
//! forged length field. The frame reader preallocates at most
//! [`PREALLOC_CAP`] bytes regardless of the declared length (the same
//! defence `read_index` uses against forged section lengths), and the
//! `Query` decoder validates the peak count against the actual payload
//! length *before* allocating the peak vector.

use std::io::{self, Read, Write};

/// Protocol version reported in [`Response::Pong`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Largest accepted frame payload (16 MiB — a query spectrum is ~1.2 KiB
/// after server-side preprocessing caps peaks at 100, so this is generous).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Upper bound on what a declared frame length may *preallocate*; the
/// buffer still grows to the real payload size as bytes actually arrive.
pub const PREALLOC_CAP: usize = 64 * 1024;

/// Error code: frame or payload failed structural validation.
pub const CODE_MALFORMED: u16 = 1;
/// Error code: the message kind byte is not one this server understands.
pub const CODE_UNSUPPORTED: u16 = 2;
/// Error code: declared frame length exceeds [`MAX_FRAME_LEN`].
pub const CODE_OVERSIZED: u16 = 3;
/// Error code: the frame parsed but a field value is unusable (e.g. a NaN
/// or non-positive precursor tolerance).
pub const CODE_BAD_REQUEST: u16 = 4;
/// Error code: the search itself failed (e.g. chunk fault I/O error).
pub const CODE_SEARCH_FAILED: u16 = 5;
/// Error code: the server is shutting down and no longer accepts queries.
pub const CODE_SHUTTING_DOWN: u16 = 6;

/// A decoded protocol-level failure. Every variant is a *clean* error: the
/// decoder never panics and never allocates more than the bytes that
/// actually arrived (plus [`PREALLOC_CAP`]).
#[derive(Debug)]
pub enum ProtoError {
    /// Transport-level I/O failure.
    Io(io::Error),
    /// The stream ended mid-frame (inside the header or the payload).
    Truncated,
    /// The frame header declared a payload longer than [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        declared: u32,
    },
    /// The payload's kind byte is not a known message kind.
    UnknownKind(u8),
    /// The payload failed structural validation for its kind.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "protocol I/O error: {e}"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::Oversized { declared } => {
                write!(
                    f,
                    "oversized frame: declared {declared} bytes (max {MAX_FRAME_LEN})"
                )
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown message kind 0x{k:02x}"),
            ProtoError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        // read_to_end/read_exact surface a clean EOF as UnexpectedEof; at
        // the protocol level that is a truncated frame, not an I/O fault.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e)
        }
    }
}

impl ProtoError {
    /// The wire error code a server reports for this failure.
    pub fn code(&self) -> u16 {
        match self {
            ProtoError::Io(_) | ProtoError::Truncated => CODE_MALFORMED,
            ProtoError::Oversized { .. } => CODE_OVERSIZED,
            ProtoError::UnknownKind(_) => CODE_UNSUPPORTED,
            ProtoError::Malformed(_) => CODE_MALFORMED,
        }
    }
}

/// Reads one frame, returning its payload. `Ok(None)` means the stream
/// ended *cleanly* at a frame boundary (EOF before the first header byte).
///
/// Preallocation is capped at [`PREALLOC_CAP`] no matter what length the
/// header declares, so a forged 16 MiB length against a 5-byte stream
/// costs 64 KiB, not 16 MiB.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut hdr = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut hdr[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(ProtoError::Truncated)
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(hdr);
    if len == 0 {
        return Err(ProtoError::Malformed("zero-length frame"));
    }
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized { declared: len });
    }
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(PREALLOC_CAP));
    let read = r.take(len as u64).read_to_end(&mut payload)?;
    if read < len {
        return Err(ProtoError::Truncated);
    }
    Ok(Some(payload))
}

/// Writes one frame (header + payload). The payload must fit
/// [`MAX_FRAME_LEN`]; all in-tree encoders stay far below it.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload must be 1..=MAX_FRAME_LEN bytes"
    );
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// One peak of a query spectrum on the wire: `(m/z, intensity)`.
pub type WirePeak = (f64, f32);

/// A client-to-server message.
///
/// Payload layouts (all integers/floats little-endian; kind byte first):
///
/// * `0x01` **Query** — `req_id:u64, flags:u8, [tolerance:f64 if flags&2],
///   [top_k:u32 if flags&4], scan:u32, precursor_mz:f64, charge:u8,
///   n_peaks:u32, n_peaks × (mz:f64, intensity:f32)`. Flag bit 0 requests
///   a full posting scan ([`ScanMode::FullScan`]); bits 1/2 mark the
///   optional per-request tolerance / top-k overrides as present.
/// * `0x02` **Ping** — `req_id:u64`.
/// * `0x03` **Shutdown** — `req_id:u64`.
///
/// [`ScanMode::FullScan`]: lbe_index::ScanMode::FullScan
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Search one spectrum; the server replies with [`Response::Result`]
    /// (or [`Response::Error`]) carrying the same `req_id`.
    Query {
        /// Client-chosen correlation id echoed in the response.
        req_id: u64,
        /// Force a full posting scan instead of the banded kernel.
        full_scan: bool,
        /// Per-request precursor tolerance (Da) overriding the index's
        /// built-in ΔM; `f64::INFINITY` = open search.
        tolerance: Option<f64>,
        /// Per-request cap on returned PSMs overriding the index's top-k.
        top_k: Option<u32>,
        /// Scan number (echoed into report rows by clients).
        scan: u32,
        /// Precursor m/z as measured.
        precursor_mz: f64,
        /// Precursor charge state.
        charge: u8,
        /// Raw peak list; the *server* applies the standard preprocessing
        /// (top-100 by intensity, non-finite filtering) so wire queries
        /// match file-ingested ones bit-for-bit.
        peaks: Vec<WirePeak>,
    },
    /// Liveness/handshake probe; answered with [`Response::Pong`].
    Ping {
        /// Client-chosen correlation id echoed in the response.
        req_id: u64,
    },
    /// Ask the server to stop accepting work and exit once in-flight
    /// queries drain; answered with [`Response::Bye`].
    Shutdown {
        /// Client-chosen correlation id echoed in the response.
        req_id: u64,
    },
}

/// One ranked candidate match on the wire:
/// `(peptide:u32, modform:u16, shared_peaks:u16, score:f32)`.
pub type WirePsm = (u32, u16, u16, f32);

/// Result flag bit: the server's wave deadline expired before this query
/// was searched — the PSM list is **partial** (in practice empty), not a
/// statement that nothing matched.
pub const RESULT_FLAG_DEGRADED: u8 = 1 << 0;

/// A server-to-client message.
///
/// Payload layouts (little-endian; kind byte first):
///
/// * `0x81` **Result** — `req_id:u64, n_psms:u32, n_psms × (peptide:u32,
///   modform:u16, shared_peaks:u16, score:f32)`. Emitted whenever
///   `flags == 0`, so servers that never degrade are byte-identical to
///   protocol version 1 peers.
/// * `0x84` **FlaggedResult** — `req_id:u64, flags:u8, n_psms:u32, n_psms ×
///   (peptide:u32, modform:u16, shared_peaks:u16, score:f32)`. Emitted only
///   when `flags != 0` (today: [`RESULT_FLAG_DEGRADED`]); unknown flag bits
///   are a decode error.
/// * `0x82` **Pong** — `req_id:u64, protocol_version:u16, num_chunks:u32`
///   (`num_chunks = 0` for a single, unchunked index).
/// * `0x83` **Bye** — `req_id:u64`.
/// * `0xEE` **Error** — `req_id:u64, code:u16, msg_len:u32, msg` (UTF-8;
///   `req_id = 0` when the failure predates parsing a request id).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ranked PSMs for one query, already truncated to the effective top-k.
    Result {
        /// The request's correlation id.
        req_id: u64,
        /// Ranked matches, best first (the searcher's total order).
        psms: Vec<WirePsm>,
        /// Result qualifiers ([`RESULT_FLAG_DEGRADED`]); `0` = a complete,
        /// ordinary result, encoded exactly as protocol version 1 did.
        flags: u8,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// The request's correlation id.
        req_id: u64,
        /// Server protocol version ([`PROTOCOL_VERSION`]).
        protocol_version: u16,
        /// Chunk count of the served container; 0 = single index.
        num_chunks: u32,
    },
    /// Acknowledgement of [`Request::Shutdown`]; the connection closes
    /// after this frame.
    Bye {
        /// The request's correlation id.
        req_id: u64,
    },
    /// A per-request or per-connection failure (`CODE_*` constants).
    Error {
        /// The offending request's id, or 0 if unknown.
        req_id: u64,
        /// One of the `CODE_*` constants.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

const KIND_QUERY: u8 = 0x01;
const KIND_PING: u8 = 0x02;
const KIND_SHUTDOWN: u8 = 0x03;
const KIND_RESULT: u8 = 0x81;
const KIND_PONG: u8 = 0x82;
const KIND_BYE: u8 = 0x83;
const KIND_RESULT_FLAGGED: u8 = 0x84;
const KIND_ERROR: u8 = 0xEE;

const KNOWN_RESULT_FLAGS: u8 = RESULT_FLAG_DEGRADED;

const FLAG_FULL_SCAN: u8 = 1 << 0;
const FLAG_HAS_TOLERANCE: u8 = 1 << 1;
const FLAG_HAS_TOP_K: u8 = 1 << 2;

/// Little-endian cursor over a payload; every read is bounds-checked and
/// returns [`ProtoError::Malformed`] on underrun.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Malformed("field past end of payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after payload"))
        }
    }
}

impl Request {
    /// Encodes this request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Query {
                req_id,
                full_scan,
                tolerance,
                top_k,
                scan,
                precursor_mz,
                charge,
                peaks,
            } => {
                let mut flags = 0u8;
                if *full_scan {
                    flags |= FLAG_FULL_SCAN;
                }
                if tolerance.is_some() {
                    flags |= FLAG_HAS_TOLERANCE;
                }
                if top_k.is_some() {
                    flags |= FLAG_HAS_TOP_K;
                }
                let mut b = Vec::with_capacity(31 + peaks.len() * 12);
                b.push(KIND_QUERY);
                b.extend_from_slice(&req_id.to_le_bytes());
                b.push(flags);
                if let Some(t) = tolerance {
                    b.extend_from_slice(&t.to_le_bytes());
                }
                if let Some(k) = top_k {
                    b.extend_from_slice(&k.to_le_bytes());
                }
                b.extend_from_slice(&scan.to_le_bytes());
                b.extend_from_slice(&precursor_mz.to_le_bytes());
                b.push(*charge);
                b.extend_from_slice(&(peaks.len() as u32).to_le_bytes());
                for (mz, intensity) in peaks {
                    b.extend_from_slice(&mz.to_le_bytes());
                    b.extend_from_slice(&intensity.to_le_bytes());
                }
                b
            }
            Request::Ping { req_id } => {
                let mut b = Vec::with_capacity(9);
                b.push(KIND_PING);
                b.extend_from_slice(&req_id.to_le_bytes());
                b
            }
            Request::Shutdown { req_id } => {
                let mut b = Vec::with_capacity(9);
                b.push(KIND_SHUTDOWN);
                b.extend_from_slice(&req_id.to_le_bytes());
                b
            }
        }
    }

    /// Decodes a frame payload into a request. Structural validation only
    /// (exact lengths, known kinds); never panics, and the peak vector is
    /// sized from the *actual* payload length, not trusted counts.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cur::new(payload);
        match c.u8()? {
            KIND_QUERY => {
                let req_id = c.u64()?;
                let flags = c.u8()?;
                if flags & !(FLAG_FULL_SCAN | FLAG_HAS_TOLERANCE | FLAG_HAS_TOP_K) != 0 {
                    return Err(ProtoError::Malformed("unknown query flag bits"));
                }
                let tolerance = if flags & FLAG_HAS_TOLERANCE != 0 {
                    Some(c.f64()?)
                } else {
                    None
                };
                let top_k = if flags & FLAG_HAS_TOP_K != 0 {
                    Some(c.u32()?)
                } else {
                    None
                };
                let scan = c.u32()?;
                let precursor_mz = c.f64()?;
                let charge = c.u8()?;
                let n_peaks = c.u32()? as usize;
                // Validate the declared count against the bytes actually
                // present BEFORE allocating: a forged count cannot reserve
                // more memory than the (already-bounded) payload holds.
                if c.remaining() != n_peaks * 12 {
                    return Err(ProtoError::Malformed(
                        "peak count disagrees with payload length",
                    ));
                }
                let mut peaks = Vec::with_capacity(n_peaks);
                for _ in 0..n_peaks {
                    peaks.push((c.f64()?, c.f32()?));
                }
                c.finish()?;
                Ok(Request::Query {
                    req_id,
                    full_scan: flags & FLAG_FULL_SCAN != 0,
                    tolerance,
                    top_k,
                    scan,
                    precursor_mz,
                    charge,
                    peaks,
                })
            }
            KIND_PING => {
                let req_id = c.u64()?;
                c.finish()?;
                Ok(Request::Ping { req_id })
            }
            KIND_SHUTDOWN => {
                let req_id = c.u64()?;
                c.finish()?;
                Ok(Request::Shutdown { req_id })
            }
            k => Err(ProtoError::UnknownKind(k)),
        }
    }
}

impl Response {
    /// Encodes this response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Result {
                req_id,
                psms,
                flags,
            } => {
                let mut b = Vec::with_capacity(14 + psms.len() * 12);
                if *flags == 0 {
                    b.push(KIND_RESULT);
                    b.extend_from_slice(&req_id.to_le_bytes());
                } else {
                    b.push(KIND_RESULT_FLAGGED);
                    b.extend_from_slice(&req_id.to_le_bytes());
                    b.push(*flags);
                }
                b.extend_from_slice(&(psms.len() as u32).to_le_bytes());
                for (peptide, modform, shared, score) in psms {
                    b.extend_from_slice(&peptide.to_le_bytes());
                    b.extend_from_slice(&modform.to_le_bytes());
                    b.extend_from_slice(&shared.to_le_bytes());
                    b.extend_from_slice(&score.to_le_bytes());
                }
                b
            }
            Response::Pong {
                req_id,
                protocol_version,
                num_chunks,
            } => {
                let mut b = Vec::with_capacity(15);
                b.push(KIND_PONG);
                b.extend_from_slice(&req_id.to_le_bytes());
                b.extend_from_slice(&protocol_version.to_le_bytes());
                b.extend_from_slice(&num_chunks.to_le_bytes());
                b
            }
            Response::Bye { req_id } => {
                let mut b = Vec::with_capacity(9);
                b.push(KIND_BYE);
                b.extend_from_slice(&req_id.to_le_bytes());
                b
            }
            Response::Error {
                req_id,
                code,
                message,
            } => {
                let msg = message.as_bytes();
                let mut b = Vec::with_capacity(15 + msg.len());
                b.push(KIND_ERROR);
                b.extend_from_slice(&req_id.to_le_bytes());
                b.extend_from_slice(&code.to_le_bytes());
                b.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                b.extend_from_slice(msg);
                b
            }
        }
    }

    /// Decodes a frame payload into a response. Same safety contract as
    /// [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cur::new(payload);
        match c.u8()? {
            kind @ (KIND_RESULT | KIND_RESULT_FLAGGED) => {
                let req_id = c.u64()?;
                let flags = if kind == KIND_RESULT_FLAGGED {
                    let f = c.u8()?;
                    if f & !KNOWN_RESULT_FLAGS != 0 {
                        return Err(ProtoError::Malformed("unknown result flag bits"));
                    }
                    f
                } else {
                    0
                };
                let n = c.u32()? as usize;
                if c.remaining() != n * 12 {
                    return Err(ProtoError::Malformed(
                        "psm count disagrees with payload length",
                    ));
                }
                let mut psms = Vec::with_capacity(n);
                for _ in 0..n {
                    psms.push((c.u32()?, c.u16()?, c.u16()?, c.f32()?));
                }
                c.finish()?;
                Ok(Response::Result {
                    req_id,
                    psms,
                    flags,
                })
            }
            KIND_PONG => {
                let req_id = c.u64()?;
                let protocol_version = c.u16()?;
                let num_chunks = c.u32()?;
                c.finish()?;
                Ok(Response::Pong {
                    req_id,
                    protocol_version,
                    num_chunks,
                })
            }
            KIND_BYE => {
                let req_id = c.u64()?;
                c.finish()?;
                Ok(Response::Bye { req_id })
            }
            KIND_ERROR => {
                let req_id = c.u64()?;
                let code = c.u16()?;
                let n = c.u32()? as usize;
                if c.remaining() != n {
                    return Err(ProtoError::Malformed(
                        "message length disagrees with payload",
                    ));
                }
                let message = String::from_utf8(c.bytes(n)?.to_vec())
                    .map_err(|_| ProtoError::Malformed("error message is not UTF-8"))?;
                c.finish()?;
                Ok(Response::Error {
                    req_id,
                    code,
                    message,
                })
            }
            k => Err(ProtoError::UnknownKind(k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &r.encode()).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), r);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Ping { req_id: 7 });
        roundtrip_req(Request::Shutdown { req_id: u64::MAX });
        roundtrip_req(Request::Query {
            req_id: 42,
            full_scan: true,
            tolerance: Some(1.25),
            top_k: Some(3),
            scan: 9,
            precursor_mz: 523.77,
            charge: 2,
            peaks: vec![(100.0, 1.0), (200.5, 0.25)],
        });
        roundtrip_req(Request::Query {
            req_id: 0,
            full_scan: false,
            tolerance: None,
            top_k: None,
            scan: 0,
            precursor_mz: 0.0,
            charge: 0,
            peaks: vec![],
        });
    }

    #[test]
    fn response_roundtrips() {
        for r in [
            Response::Result {
                req_id: 1,
                psms: vec![(5, 0, 9, 12.5), (6, 2, 4, 3.0)],
                flags: 0,
            },
            Response::Result {
                req_id: 9,
                psms: vec![],
                flags: RESULT_FLAG_DEGRADED,
            },
            Response::Pong {
                req_id: 2,
                protocol_version: PROTOCOL_VERSION,
                num_chunks: 4,
            },
            Response::Bye { req_id: 3 },
            Response::Error {
                req_id: 4,
                code: CODE_BAD_REQUEST,
                message: "tolerance must be positive".into(),
            },
        ] {
            let mut wire = Vec::new();
            write_frame(&mut wire, &r.encode()).unwrap();
            let payload = read_frame(&mut wire.as_slice()).unwrap().unwrap();
            assert_eq!(Response::decode(&payload).unwrap(), r);
        }
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_are_clean_errors() {
        assert!(matches!(
            read_frame(&mut [1u8, 0].as_slice()),
            Err(ProtoError::Truncated)
        ));
        // Declares 100 bytes, delivers 2.
        let mut wire = vec![100, 0, 0, 0, 0xAA, 0xBB];
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::Truncated)
        ));
        wire.clear();
    }

    #[test]
    fn oversized_declared_length_rejected_before_reading() {
        let wire = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ProtoError::Oversized { declared }) if declared == MAX_FRAME_LEN + 1
        ));
    }

    #[test]
    fn unflagged_result_is_byte_identical_to_v1_layout() {
        // Protocol version 1 peers must see the exact 0x81 bytes they
        // always did when no flag is set.
        let r = Response::Result {
            req_id: 0x0102_0304_0506_0708,
            psms: vec![(7, 1, 3, 2.5)],
            flags: 0,
        };
        let b = r.encode();
        assert_eq!(b[0], 0x81);
        assert_eq!(b.len(), 1 + 8 + 4 + 12);
        assert_eq!(&b[1..9], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(&b[9..13], &1u32.to_le_bytes());
    }

    #[test]
    fn degraded_result_uses_flagged_kind_and_roundtrips() {
        let r = Response::Result {
            req_id: 11,
            psms: vec![],
            flags: RESULT_FLAG_DEGRADED,
        };
        let b = r.encode();
        assert_eq!(b[0], 0x84);
        assert_eq!(Response::decode(&b).unwrap(), r);
    }

    #[test]
    fn unknown_result_flag_bits_rejected() {
        let mut b = Response::Result {
            req_id: 1,
            psms: vec![],
            flags: RESULT_FLAG_DEGRADED,
        }
        .encode();
        b[9] |= 0x80; // flags byte sits right after the req_id
        assert!(matches!(
            Response::decode(&b),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn forged_peak_count_rejected_without_allocation() {
        // A QUERY declaring u32::MAX peaks in a 31-byte payload.
        let mut p = Request::Query {
            req_id: 1,
            full_scan: false,
            tolerance: None,
            top_k: None,
            scan: 1,
            precursor_mz: 500.0,
            charge: 2,
            peaks: vec![],
        }
        .encode();
        let n = p.len();
        p[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Request::decode(&p), Err(ProtoError::Malformed(_))));
    }
}
