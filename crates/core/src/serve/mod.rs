//! `lbe serve` — a long-lived query daemon over a resident index.
//!
//! The paper's motivating deployment ("millions of users" querying one
//! load-balanced index) amortizes the expensive index build/load across
//! many queries. This module is that runtime: a [`ResidentEngine`] opened
//! once, a TCP listener speaking the length-prefixed [`proto`] protocol,
//! and a dispatcher that batches concurrently-arriving queries into
//! [`search_wave`] calls on the shared `minipool` runtime.
//!
//! Architecture (one process):
//!
//! ```text
//! client ──TCP──▶ reader thread ──bounded job channel──▶ dispatcher ─┐
//! client ──TCP──▶ reader thread ──────────────┘ (admission control)  │
//!                      ▲                                  waves on   │
//!                      │ per-conn reply channel ◀─────── minipool ◀──┘
//!                 writer thread
//! ```
//!
//! Admission control is two-level: a bounded `sync_channel` caps total
//! in-flight queries across the server (readers block on `send` when the
//! backlog is full), and a per-connection gate caps how many queries one
//! connection may have outstanding (fairness: one greedy client cannot
//! monopolize the backlog). Shutdown — via [`Request::Shutdown`] or a
//! [`ShutdownHandle`] — stops admission, drains queries already accepted,
//! answers them, and joins every thread before [`Server::run`] returns.
//!
//! There is also a socket-free transport: [`serve_stdin`] runs the same
//! protocol over any `Read`/`Write` pair, for scripting and tests.
//!
//! [`search_wave`]: ResidentEngine::search_wave
//! [`Request::Shutdown`]: proto::Request::Shutdown

pub mod engine;
pub mod proto;

pub use engine::ResidentEngine;

use lbe_index::{QueryOptions, ScanMode};
use lbe_spectra::spectrum::{Peak, Spectrum};
use proto::{ProtoError, Request, Response};
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// How long a blocked reader/waiter sleeps between checks of the stop
/// flag. Bounds shutdown latency for idle connections.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How many poll intervals a reader keeps waiting for the *rest* of a
/// frame after shutdown begins (a client caught mid-frame gets ~2 s of
/// patience, then the frame counts as truncated).
const MID_FRAME_PATIENCE: u32 = 40;

/// Server tuning knobs. The defaults suit tests and small deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads per search wave (single-index backend).
    pub threads: usize,
    /// Resident-chunk budget for chunked containers (`usize::MAX` = all).
    pub max_resident_chunks: usize,
    /// Total queries admitted server-wide before readers block.
    pub max_inflight: usize,
    /// Most queries batched into one search wave.
    pub max_wave: usize,
    /// Most queries one connection may have outstanding (fairness cap).
    pub per_conn_inflight: usize,
    /// Degraded-mode wall-clock budget per search wave: queries not
    /// *started* by the deadline are answered immediately with a partial
    /// result flagged [`proto::RESULT_FLAG_DEGRADED`] instead of stalling
    /// the wave. `None` (the default) never degrades.
    pub wave_deadline: Option<Duration>,
    /// Reap connections idle (no frame started) this long: the server
    /// sends a clean [`proto::Response::Bye`] and closes. `None` (the
    /// default) keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            max_resident_chunks: usize::MAX,
            max_inflight: 256,
            max_wave: 64,
            per_conn_inflight: 64,
            wave_deadline: None,
            idle_timeout: None,
        }
    }
}

/// Counters a serve run reports on exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames that decoded into a valid request.
    pub requests: u64,
    /// Response frames successfully written.
    pub responses: u64,
    /// Frames (or byte streams) rejected as protocol errors.
    pub protocol_errors: u64,
    /// Queries answered with a degraded (partial) result because their
    /// wave's deadline expired before they were searched.
    pub degraded: u64,
}

#[derive(Default)]
struct StatsInner {
    connections: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    protocol_errors: AtomicU64,
    degraded: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            connections: self.connections.load(Ordering::SeqCst),
            requests: self.requests.load(Ordering::SeqCst),
            responses: self.responses.load(Ordering::SeqCst),
            protocol_errors: self.protocol_errors.load(Ordering::SeqCst),
            degraded: self.degraded.load(Ordering::SeqCst),
        }
    }
}

/// Per-connection fairness gate: a counted semaphore capping outstanding
/// queries, with a condvar so releases wake blocked readers.
struct ConnGate {
    count: Mutex<usize>,
    released: Condvar,
}

impl ConnGate {
    fn new() -> Self {
        ConnGate {
            count: Mutex::new(0),
            released: Condvar::new(),
        }
    }

    /// Takes one slot, waiting while `cap` are outstanding. Returns
    /// `false` (without taking a slot) if the server stops first.
    fn acquire(&self, cap: usize, stop: &AtomicBool) -> bool {
        let mut n = self.count.lock().expect("conn gate poisoned");
        while *n >= cap {
            if stop.load(Ordering::SeqCst) {
                return false;
            }
            let (guard, _) = self
                .released
                .wait_timeout(n, POLL_INTERVAL)
                .expect("conn gate poisoned");
            n = guard;
        }
        *n += 1;
        true
    }

    fn release(&self) {
        let mut n = self.count.lock().expect("conn gate poisoned");
        *n = n.saturating_sub(1);
        self.released.notify_all();
    }

    /// Waits (bounded) until no queries are outstanding — the drain step
    /// before acknowledging a shutdown request.
    fn wait_idle(&self, max_polls: u32) {
        let mut n = self.count.lock().expect("conn gate poisoned");
        let mut polls = 0;
        while *n > 0 && polls < max_polls {
            let (guard, _) = self
                .released
                .wait_timeout(n, POLL_INTERVAL)
                .expect("conn gate poisoned");
            n = guard;
            polls += 1;
        }
    }
}

/// A query admitted into the dispatch queue.
struct Job {
    spectrum: Spectrum,
    opts: QueryOptions,
    req_id: u64,
    reply: Sender<Reply>,
    gate: Arc<ConnGate>,
}

/// `(release_gate_slot, response)` — dispatcher replies release the slot
/// their job held; reader-direct replies (pong, errors) never held one.
type Reply = (bool, Response);

/// Remotely stops a running [`Server`]: sets the stop flag and nudges the
/// acceptor awake with a throwaway connection.
#[derive(Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Begins graceful shutdown: no new queries are admitted, in-flight
    /// queries drain and are answered, then [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor if it is blocked in accept().
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A bound TCP server around a [`ResidentEngine`]. Construct with
/// [`Server::bind`], then call [`Server::run`] (which blocks until
/// shutdown and returns the run's [`ServeStats`]).
pub struct Server {
    engine: Arc<ResidentEngine>,
    listener: TcpListener,
    addr: SocketAddr,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over an
    /// already-opened engine. Binding after the engine opens means a bad
    /// index path can never produce a half-started server: the listener
    /// does not exist until the index fully validated.
    pub fn bind(engine: ResidentEngine, addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            engine: Arc::new(engine),
            listener,
            addr,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves the actual port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// Runs the accept → dispatch → reply loops until shutdown, then
    /// drains and joins every thread. Returns the run's counters.
    pub fn run(self) -> io::Result<ServeStats> {
        let Server {
            engine,
            listener,
            addr,
            cfg,
            stop,
        } = self;
        let stats = Arc::new(StatsInner::default());
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(cfg.max_inflight.max(1));

        let dispatcher = {
            let engine = Arc::clone(&engine);
            let stats = Arc::clone(&stats);
            thread::spawn(move || dispatch_loop(&engine, &job_rx, cfg, &stats))
        };

        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        for incoming in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                Err(_) => continue,
            };
            stats.connections.fetch_add(1, Ordering::SeqCst);
            let engine = Arc::clone(&engine);
            let job_tx = job_tx.clone();
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            conns.push(thread::spawn(move || {
                handle_connection(stream, &engine, &job_tx, &stop, addr, cfg, &stats);
            }));
        }
        drop(listener);
        drop(job_tx);
        for h in conns {
            let _ = h.join();
        }
        let _ = dispatcher.join();
        Ok(stats.snapshot())
    }
}

/// Dispatcher: pulls admitted jobs, opportunistically batches up to
/// `max_wave` of them, searches the wave, and queues one reply per job.
/// Exits when every job sender (acceptor + connections) is gone.
fn dispatch_loop(
    engine: &ResidentEngine,
    job_rx: &Receiver<Job>,
    cfg: ServeConfig,
    stats: &StatsInner,
) {
    while let Ok(first) = job_rx.recv() {
        let mut wave: Vec<(Spectrum, QueryOptions)> = Vec::new();
        let mut meta: Vec<(u64, Sender<Reply>, Arc<ConnGate>)> = Vec::new();
        let push = |j: Job, wave: &mut Vec<_>, meta: &mut Vec<_>| {
            wave.push((j.spectrum, j.opts));
            meta.push((j.req_id, j.reply, j.gate));
        };
        push(first, &mut wave, &mut meta);
        while wave.len() < cfg.max_wave.max(1) {
            match job_rx.try_recv() {
                Ok(j) => push(j, &mut wave, &mut meta),
                Err(_) => break,
            }
        }
        // A generation-store backend reopens the latest generation between
        // waves (one small CURRENT read when nothing changed) — connections
        // never drop, and only chunks whose content hashes moved re-fault.
        // A transient error (e.g. a concurrent gc) leaves the wave on the
        // already-loaded generation; the next wave retries.
        let _ = engine.refresh();
        let deadline = cfg.wave_deadline.map(|d| std::time::Instant::now() + d);
        let results = engine.search_wave_deadline(&wave, cfg.threads.max(1), deadline);
        for ((req_id, reply, _gate), result) in meta.into_iter().zip(results) {
            let response = match result {
                Some(Ok(r)) => Response::Result {
                    req_id,
                    psms: r
                        .psms
                        .iter()
                        .map(|p| (p.peptide, p.modform, p.shared_peaks, p.score))
                        .collect(),
                    flags: 0,
                },
                Some(Err(e)) => Response::Error {
                    req_id,
                    code: proto::CODE_SEARCH_FAILED,
                    message: e.to_string(),
                },
                // Deadline expired before this query was searched: answer
                // *now* with a flagged partial result instead of making
                // every client in the wave wait out the stall.
                None => {
                    stats.degraded.fetch_add(1, Ordering::SeqCst);
                    Response::Result {
                        req_id,
                        psms: Vec::new(),
                        flags: proto::RESULT_FLAG_DEGRADED,
                    }
                }
            };
            // A dead connection dropped its receiver; its gate no longer
            // has waiters, so dropping the reply is safe and must not
            // disturb other connections.
            let _ = reply.send((true, response));
        }
    }
}

/// Outcome of one interruptible frame read (see
/// [`read_frame_interruptible`]).
enum ReadOutcome {
    /// A complete frame payload arrived.
    Frame(Vec<u8>),
    /// Clean end: EOF at a frame boundary, or shutdown while idle.
    Closed,
    /// No frame *started* within the server's idle timeout — the caller
    /// reaps the connection with a clean `Bye`.
    IdleExpired,
}

/// What one interruptible exact-read step produced.
enum Step {
    /// The buffer is full.
    Got,
    /// Clean EOF at a frame boundary (or shutdown while idle).
    CleanEof,
    /// Idle timeout expired before the first byte of a frame.
    Idle,
}

/// Reads one frame, returning to check the stop flag every
/// [`POLL_INTERVAL`] while idle. With an `idle_timeout`, a connection
/// that does not *start* a frame within it yields
/// [`ReadOutcome::IdleExpired`]; mid-frame bytes reset nothing — the
/// timeout only ever fires between frames.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    idle_timeout: Option<Duration>,
) -> Result<ReadOutcome, ProtoError> {
    let mut patience = MID_FRAME_PATIENCE;
    // Idle budget in polls; the read timeout below ticks one poll each.
    let mut idle_polls =
        idle_timeout.map(|t| (t.as_millis() / POLL_INTERVAL.as_millis()).max(1) as u64);
    let mut read_exact_interruptible =
        |buf: &mut [u8], stream: &mut TcpStream, started: &mut bool| -> Result<Step, ProtoError> {
            let mut got = 0;
            while got < buf.len() {
                match stream.read(&mut buf[got..]) {
                    Ok(0) => {
                        return if got == 0 && !*started {
                            Ok(Step::CleanEof) // clean EOF at a frame boundary
                        } else {
                            Err(ProtoError::Truncated)
                        };
                    }
                    Ok(n) => {
                        got += n;
                        *started = true;
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        if stop.load(Ordering::SeqCst) {
                            if !*started {
                                return Ok(Step::CleanEof); // idle at shutdown
                            }
                            patience = patience.saturating_sub(1);
                            if patience == 0 {
                                return Err(ProtoError::Truncated);
                            }
                        } else if !*started {
                            if let Some(left) = idle_polls.as_mut() {
                                *left = left.saturating_sub(1);
                                if *left == 0 {
                                    return Ok(Step::Idle);
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(ProtoError::Io(e)),
                }
            }
            Ok(Step::Got)
        };

    let mut started = false;
    let mut hdr = [0u8; 4];
    match read_exact_interruptible(&mut hdr, stream, &mut started)? {
        Step::Got => {}
        Step::CleanEof => return Ok(ReadOutcome::Closed),
        Step::Idle => return Ok(ReadOutcome::IdleExpired),
    }
    let len = u32::from_le_bytes(hdr);
    if len == 0 {
        return Err(ProtoError::Malformed("zero-length frame"));
    }
    if len > proto::MAX_FRAME_LEN {
        return Err(ProtoError::Oversized { declared: len });
    }
    let len = len as usize;
    // Preallocation capped exactly like the blocking reader: a forged
    // length buys at most PREALLOC_CAP up front.
    let mut payload = Vec::with_capacity(len.min(proto::PREALLOC_CAP));
    let mut chunk = [0u8; 8192];
    while payload.len() < len {
        let want = (len - payload.len()).min(chunk.len());
        match read_exact_interruptible(&mut chunk[..want], stream, &mut started)? {
            Step::Got => {}
            // `started` is true by now, so these arms are unreachable in
            // practice; treat either as a truncated frame defensively.
            Step::CleanEof | Step::Idle => return Err(ProtoError::Truncated),
        }
        payload.extend_from_slice(&chunk[..want]);
    }
    Ok(ReadOutcome::Frame(payload))
}

/// One connection: a reader loop on this thread plus a writer thread, so
/// responses stream back while the reader keeps admitting queries.
fn handle_connection(
    mut stream: TcpStream,
    engine: &Arc<ResidentEngine>,
    job_tx: &SyncSender<Job>,
    stop: &Arc<AtomicBool>,
    addr: SocketAddr,
    cfg: ServeConfig,
    stats: &Arc<StatsInner>,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let gate = Arc::new(ConnGate::new());

    let writer = {
        let gate = Arc::clone(&gate);
        let stats = Arc::clone(stats);
        thread::spawn(move || {
            let mut sink = BufWriter::new(writer_stream);
            let mut broken = false;
            // Keep draining after a write error: gate slots must still be
            // released so the dispatcher and reader are never wedged by
            // one dead client.
            while let Ok((release, response)) = reply_rx.recv() {
                if release {
                    gate.release();
                }
                if !broken {
                    let wrote = proto::write_frame(&mut sink, &response.encode())
                        .and_then(|()| sink.flush());
                    match wrote {
                        Ok(()) => {
                            stats.responses.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(_) => broken = true,
                    }
                }
            }
        })
    };

    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame_interruptible(&mut stream, stop, cfg.idle_timeout) {
            Ok(ReadOutcome::Frame(f)) => f,
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::IdleExpired) => {
                // Reap: tell the client why with a clean Bye, then close.
                let _ = reply_tx.send((false, Response::Bye { req_id: 0 }));
                break;
            }
            Err(e) => {
                stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let _ = reply_tx.send((
                    false,
                    Response::Error {
                        req_id: 0,
                        code: e.code(),
                        message: e.to_string(),
                    },
                ));
                break; // framing is lost; close this connection only
            }
        };
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let _ = reply_tx.send((
                    false,
                    Response::Error {
                        req_id: 0,
                        code: e.code(),
                        message: e.to_string(),
                    },
                ));
                break;
            }
        };
        stats.requests.fetch_add(1, Ordering::SeqCst);
        match request {
            Request::Ping { req_id } => {
                let _ = reply_tx.send((
                    false,
                    Response::Pong {
                        req_id,
                        protocol_version: proto::PROTOCOL_VERSION,
                        num_chunks: engine.num_chunks() as u32,
                    },
                ));
            }
            Request::Shutdown { req_id } => {
                stop.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(addr); // wake the acceptor
                                                  // Drain this connection's in-flight queries so Bye is
                                                  // the final frame the client sees.
                gate.wait_idle(MID_FRAME_PATIENCE * 30);
                let _ = reply_tx.send((false, Response::Bye { req_id }));
                break;
            }
            Request::Query {
                req_id,
                full_scan,
                tolerance,
                top_k,
                scan,
                precursor_mz,
                charge,
                peaks,
            } => {
                if let Some(t) = tolerance {
                    if t.is_nan() || t <= 0.0 {
                        let _ = reply_tx.send((
                            false,
                            Response::Error {
                                req_id,
                                code: proto::CODE_BAD_REQUEST,
                                message: format!("precursor tolerance must be positive (got {t})"),
                            },
                        ));
                        continue;
                    }
                }
                if !gate.acquire(cfg.per_conn_inflight.max(1), stop) {
                    let _ = reply_tx.send((
                        false,
                        Response::Error {
                            req_id,
                            code: proto::CODE_SHUTTING_DOWN,
                            message: "server is shutting down".into(),
                        },
                    ));
                    break;
                }
                let raw = Spectrum::new(
                    scan,
                    precursor_mz,
                    charge,
                    peaks
                        .iter()
                        .map(|&(mz, intensity)| Peak { mz, intensity })
                        .collect(),
                );
                let job = Job {
                    spectrum: engine.preprocess(&raw),
                    opts: QueryOptions {
                        scan_mode: if full_scan {
                            ScanMode::FullScan
                        } else {
                            ScanMode::Auto
                        },
                        top_k: top_k.map(|k| k as usize),
                        precursor_tolerance: tolerance,
                    },
                    req_id,
                    reply: reply_tx.clone(),
                    gate: Arc::clone(&gate),
                };
                if job_tx.send(job).is_err() {
                    gate.release();
                    let _ = reply_tx.send((
                        false,
                        Response::Error {
                            req_id,
                            code: proto::CODE_SHUTTING_DOWN,
                            message: "server is shutting down".into(),
                        },
                    ));
                    break;
                }
            }
        }
    }
    drop(reply_tx);
    let _ = writer.join();
}

/// Runs the serve protocol sequentially over an arbitrary byte stream —
/// the stdin/stdout transport (`lbe serve --stdin`), also handy in tests
/// with in-memory readers.
///
/// Requests are answered strictly in order; EOF at a frame boundary (or a
/// [`Request::Shutdown`]) ends the session cleanly. A protocol error is
/// answered with an error frame and ends the session (framing is lost).
///
/// [`Request::Shutdown`]: proto::Request::Shutdown
pub fn serve_stdin<R: Read, W: Write>(
    engine: &ResidentEngine,
    input: &mut R,
    output: &mut W,
) -> io::Result<ServeStats> {
    let mut stats = ServeStats {
        connections: 1,
        ..Default::default()
    };
    let mut sink = BufWriter::new(output);
    let respond = |sink: &mut BufWriter<&mut W>,
                   stats: &mut ServeStats,
                   response: &Response|
     -> io::Result<()> {
        proto::write_frame(sink, &response.encode())?;
        sink.flush()?;
        stats.responses += 1;
        Ok(())
    };
    loop {
        let frame = match proto::read_frame(input) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(ProtoError::Io(e)) => return Err(e),
            Err(e) => {
                stats.protocol_errors += 1;
                respond(
                    &mut sink,
                    &mut stats,
                    &Response::Error {
                        req_id: 0,
                        code: e.code(),
                        message: e.to_string(),
                    },
                )?;
                break;
            }
        };
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                stats.protocol_errors += 1;
                respond(
                    &mut sink,
                    &mut stats,
                    &Response::Error {
                        req_id: 0,
                        code: e.code(),
                        message: e.to_string(),
                    },
                )?;
                break;
            }
        };
        stats.requests += 1;
        match request {
            Request::Ping { req_id } => {
                respond(
                    &mut sink,
                    &mut stats,
                    &Response::Pong {
                        req_id,
                        protocol_version: proto::PROTOCOL_VERSION,
                        num_chunks: engine.num_chunks() as u32,
                    },
                )?;
            }
            Request::Shutdown { req_id } => {
                respond(&mut sink, &mut stats, &Response::Bye { req_id })?;
                break;
            }
            Request::Query {
                req_id,
                full_scan,
                tolerance,
                top_k,
                scan,
                precursor_mz,
                charge,
                peaks,
            } => {
                if let Some(t) = tolerance {
                    if t.is_nan() || t <= 0.0 {
                        respond(
                            &mut sink,
                            &mut stats,
                            &Response::Error {
                                req_id,
                                code: proto::CODE_BAD_REQUEST,
                                message: format!("precursor tolerance must be positive (got {t})"),
                            },
                        )?;
                        continue;
                    }
                }
                let raw = Spectrum::new(
                    scan,
                    precursor_mz,
                    charge,
                    peaks
                        .iter()
                        .map(|&(mz, intensity)| Peak { mz, intensity })
                        .collect(),
                );
                let opts = QueryOptions {
                    scan_mode: if full_scan {
                        ScanMode::FullScan
                    } else {
                        ScanMode::Auto
                    },
                    top_k: top_k.map(|k| k as usize),
                    precursor_tolerance: tolerance,
                };
                let response = match engine.search_one(&engine.preprocess(&raw), &opts) {
                    Ok(r) => Response::Result {
                        req_id,
                        psms: r
                            .psms
                            .iter()
                            .map(|p| (p.peptide, p.modform, p.shared_peaks, p.score))
                            .collect(),
                        flags: 0,
                    },
                    Err(e) => Response::Error {
                        req_id,
                        code: proto::CODE_SEARCH_FAILED,
                        message: e.to_string(),
                    },
                };
                respond(&mut sink, &mut stats, &response)?;
            }
        }
    }
    Ok(stats)
}
