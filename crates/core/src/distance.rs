//! Levenshtein edit distance — the similarity measure of Algorithm 1.
//!
//! Two implementations:
//!
//! * [`edit_distance`]: classic two-row DP, O(|a|·|b|) time, O(min) space.
//! * [`edit_distance_bounded`]: Ukkonen-banded DP that answers "is the
//!   distance ≤ k, and if so what is it?" in O(k·min(|a|,|b|)) — the right
//!   tool inside Algorithm 1, whose cutoffs are small constants (`d = 2`).
//!
//! Property tests (see `tests/`) check metric axioms and agreement between
//! the two implementations.

/// Levenshtein distance between `a` and `b` (unit costs).
pub fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    // Keep the shorter string in the inner dimension for O(min) space.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            let del = prev[j + 1] + 1;
            let ins = curr[j] + 1;
            curr[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Banded Levenshtein with cutoff: returns `Some(d)` if the distance is
/// `≤ max_dist`, `None` otherwise, in O(max_dist · min(|a|,|b|)) time.
pub fn edit_distance_bounded(a: &[u8], b: &[u8], max_dist: usize) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    // Length difference alone is a lower bound.
    if a.len() - b.len() > max_dist {
        return None;
    }
    if b.is_empty() {
        return (a.len() <= max_dist).then_some(a.len());
    }
    let k = max_dist;
    let big = max_dist + 1; // sentinel meaning "> max_dist"
    let n = b.len();
    // Row i covers columns j in [i-k, i+k] ∩ [0, n].
    let mut prev: Vec<usize> = vec![big; n + 1];
    for (j, p) in prev.iter_mut().enumerate().take(k.min(n) + 1) {
        *p = j;
    }
    let mut curr: Vec<usize> = vec![big; n + 1];
    for (i, &ca) in a.iter().enumerate() {
        let row = i + 1;
        let lo = row.saturating_sub(k);
        let hi = (row + k).min(n);
        if lo > hi {
            return None;
        }
        let mut row_min = big;
        // Reset only the band (plus its left neighbour used as "ins" source).
        if lo > 0 {
            curr[lo - 1] = big;
        }
        for j in lo..=hi {
            let v = if j == 0 {
                row // first column: j=0 → distance = row
            } else {
                let cb = b[j - 1];
                let sub = prev[j - 1].saturating_add(usize::from(ca != cb));
                let del = prev[j].saturating_add(1);
                let ins = curr[j - 1].saturating_add(1);
                sub.min(del).min(ins)
            };
            let v = v.min(big);
            curr[j] = v;
            row_min = row_min.min(v);
        }
        if row_min > max_dist {
            return None; // the whole band exceeded the cutoff — early exit
        }
        std::mem::swap(&mut prev, &mut curr);
        // The next row's band extends one column further right than this
        // row's; its "delete" source there is stale — mark it out-of-band.
        // (Its left diagonal source is this row's first band cell, which is
        // fresh, so nothing to invalidate on the left.)
        if row + 1 + k <= n {
            prev[row + 1 + k] = big;
        }
    }
    let d = prev[n];
    (d <= max_dist).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_zero() {
        assert_eq!(edit_distance(b"PEPTIDE", b"PEPTIDE"), 0);
        assert_eq!(edit_distance_bounded(b"PEPTIDE", b"PEPTIDE", 0), Some(0));
    }

    #[test]
    fn empty_cases() {
        assert_eq!(edit_distance(b"", b""), 0);
        assert_eq!(edit_distance(b"ABC", b""), 3);
        assert_eq!(edit_distance(b"", b"ABCD"), 4);
        assert_eq!(edit_distance_bounded(b"", b"", 0), Some(0));
        assert_eq!(edit_distance_bounded(b"ABC", b"", 3), Some(3));
        assert_eq!(edit_distance_bounded(b"ABC", b"", 2), None);
    }

    #[test]
    fn known_values() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"intention", b"execution"), 5);
        assert_eq!(edit_distance(b"AAAK", b"AAAR"), 1);
    }

    #[test]
    fn single_edits() {
        assert_eq!(edit_distance(b"PEPTIDE", b"PEPTIDES"), 1); // insert
        assert_eq!(edit_distance(b"PEPTIDE", b"PEPTIDA"), 1); // substitute
        assert_eq!(edit_distance(b"PEPTIDE", b"PETIDE"), 1); // delete (one P)
    }

    #[test]
    fn symmetry() {
        let pairs: [(&[u8], &[u8]); 3] =
            [(b"ELVIS", b"LIVES"), (b"AAK", b"AAAAK"), (b"GGR", b"KKR")];
        for (a, b) in pairs {
            assert_eq!(edit_distance(a, b), edit_distance(b, a));
        }
    }

    #[test]
    fn bounded_agrees_with_full_when_within() {
        let samples: &[&[u8]] = &[
            b"PEPTIDEK",
            b"PEPTIDER",
            b"PEPTIDE",
            b"PEPTIDEKK",
            b"AAAAAAA",
            b"ELVISLIVESK",
            b"",
            b"K",
        ];
        for &a in samples {
            for &b in samples {
                let full = edit_distance(a, b);
                for k in 0..=12 {
                    let bounded = edit_distance_bounded(a, b, k);
                    if full <= k {
                        assert_eq!(bounded, Some(full), "a={a:?} b={b:?} k={k}");
                    } else {
                        assert_eq!(bounded, None, "a={a:?} b={b:?} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_early_exit_on_length_gap() {
        assert_eq!(edit_distance_bounded(b"A", b"AAAAAAAAAA", 3), None);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let words: [&[u8]; 4] = [b"PEPTIDEK", b"PEPTIDER", b"PEPTIKER", b"GGGGGGGG"];
        for &x in &words {
            for &y in &words {
                for &z in &words {
                    assert!(edit_distance(x, z) <= edit_distance(x, y) + edit_distance(y, z));
                }
            }
        }
    }

    #[test]
    fn completely_different_strings() {
        assert_eq!(edit_distance(b"AAAA", b"GGGG"), 4);
        assert_eq!(edit_distance_bounded(b"AAAA", b"GGGG", 4), Some(4));
        assert_eq!(edit_distance_bounded(b"AAAA", b"GGGG", 3), None);
    }

    #[test]
    fn large_k_behaves_like_full() {
        assert_eq!(edit_distance_bounded(b"kitten", b"sitting", 100), Some(3));
    }
}
