//! The master's mapping table (§III-D, Fig. 4).
//!
//! "The mapping table is a simple array of size N where each *i*th chunk of
//! array of size N/p contains the indices of peptide index entries mapped to
//! machine *i*" — so a result arriving from machine `m` as a *virtual*
//! (local) peptide index is translated to the original entry "in O(1) time
//! (simple 1 memory access)".
//!
//! Our ranks may hold unequal counts (N may not divide p), so alongside the
//! flat table we keep `p + 1` offsets; the lookup is still one add plus one
//! array access.

use crate::partition::Partition;

/// Master-side virtual-index → global-peptide-id table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingTable {
    /// Concatenated per-rank local→global id maps.
    table: Vec<u32>,
    /// `offsets[m]` = start of rank `m`'s slice; `offsets[p]` = N.
    offsets: Vec<u64>,
}

impl MappingTable {
    /// Builds the table from a partition (master does this once, after
    /// index construction; worker ranks then discard their peptide tables,
    /// as in the paper).
    pub fn from_partition(partition: &Partition) -> Self {
        let mut table = Vec::with_capacity(partition.total());
        let mut offsets = Vec::with_capacity(partition.num_ranks() + 1);
        offsets.push(0u64);
        for rank in &partition.ranks {
            table.extend_from_slice(rank);
            offsets.push(table.len() as u64);
        }
        MappingTable { table, offsets }
    }

    /// Number of ranks covered.
    pub fn num_ranks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if no entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// O(1) backmap: the global peptide id of local id `local` on `rank`.
    ///
    /// Panics if `rank`/`local` are out of range (a protocol error).
    #[inline]
    pub fn global_of(&self, rank: usize, local: u32) -> u32 {
        let base = self.offsets[rank];
        let idx = base + local as u64;
        assert!(
            idx < self.offsets[rank + 1],
            "local id {local} out of range for rank {rank}"
        );
        self.table[idx as usize]
    }

    /// Number of peptides on `rank`.
    pub fn rank_len(&self, rank: usize) -> usize {
        (self.offsets[rank + 1] - self.offsets[rank]) as usize
    }

    /// Heap bytes (the distributed footprint overhead of Fig. 5).
    pub fn heap_bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<u32>()
            + self.offsets.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::Grouping;
    use crate::partition::{partition_groups, PartitionPolicy};

    fn partition(n: usize, p: usize, policy: PartitionPolicy) -> Partition {
        partition_groups(&Grouping::trivial(n), p, policy)
    }

    #[test]
    fn round_trips_every_assignment() {
        for policy in [
            PartitionPolicy::Chunk,
            PartitionPolicy::Cyclic,
            PartitionPolicy::Random { seed: 11 },
        ] {
            let part = partition(23, 4, policy);
            let map = MappingTable::from_partition(&part);
            assert_eq!(map.len(), 23);
            assert_eq!(map.num_ranks(), 4);
            for (m, list) in part.ranks.iter().enumerate() {
                assert_eq!(map.rank_len(m), list.len());
                for (local, &global) in list.iter().enumerate() {
                    assert_eq!(map.global_of(m, local as u32), global, "{policy}");
                }
            }
        }
    }

    #[test]
    fn uneven_ranks_supported() {
        let part = partition(10, 3, PartitionPolicy::Cyclic);
        let map = MappingTable::from_partition(&part);
        assert_eq!(map.rank_len(0), 4);
        assert_eq!(map.rank_len(1), 3);
        assert_eq!(map.rank_len(2), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_local_panics() {
        let part = partition(4, 2, PartitionPolicy::Chunk);
        let map = MappingTable::from_partition(&part);
        map.global_of(0, 2);
    }

    #[test]
    fn empty_partition() {
        let part = partition(0, 2, PartitionPolicy::Chunk);
        let map = MappingTable::from_partition(&part);
        assert!(map.is_empty());
        assert_eq!(map.rank_len(0), 0);
    }

    #[test]
    fn heap_bytes_about_4n() {
        let part = partition(1000, 4, PartitionPolicy::Cyclic);
        let map = MappingTable::from_partition(&part);
        // ≥ 4 bytes per entry, plus the small offsets array.
        assert!(map.heap_bytes() >= 4000);
        assert!(map.heap_bytes() < 4000 + 256);
    }
}
