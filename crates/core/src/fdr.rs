//! Target-decoy false-discovery-rate estimation.
//!
//! Completes the search pipeline the way production engines do: search a
//! concatenated target+decoy database, sort PSMs by score, and estimate
//! `FDR(s) = (#decoys ≥ s) / (#targets ≥ s)`; the q-value of a PSM is the
//! minimum FDR at which it would be accepted (monotone envelope).

/// One scored identification for FDR purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredId {
    /// PSM score (higher = better).
    pub score: f32,
    /// Whether the matched peptide is a decoy.
    pub is_decoy: bool,
}

/// A PSM with its estimated q-value, in descending-score order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QValued {
    /// The input record.
    pub id: ScoredId,
    /// Estimated q-value in `[0, 1]` (capped at 1).
    pub q_value: f64,
}

/// Computes q-values by the standard target-decoy procedure.
///
/// Returns records sorted by descending score with their q-values. Decoy
/// counts use the +1 convention (`(d + 1) / max(t, 1)`), the conservative
/// estimator used by Percolator and friends.
pub fn compute_q_values(mut ids: Vec<ScoredId>) -> Vec<QValued> {
    ids.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(a.is_decoy.cmp(&b.is_decoy)) // targets first on ties
    });
    let mut out = Vec::with_capacity(ids.len());
    let (mut targets, mut decoys) = (0u64, 0u64);
    for id in ids {
        if id.is_decoy {
            decoys += 1;
        } else {
            targets += 1;
        }
        let fdr = (decoys as f64 + 1.0) / (targets.max(1) as f64);
        out.push(QValued {
            id,
            q_value: fdr.min(1.0),
        });
    }
    // q-value = running minimum FDR from the bottom (monotone envelope).
    let mut best = 1.0f64;
    for rec in out.iter_mut().rev() {
        best = best.min(rec.q_value);
        rec.q_value = best;
    }
    out
}

/// Number of *target* PSMs accepted at q-value ≤ `threshold`.
pub fn accepted_at(records: &[QValued], threshold: f64) -> usize {
    records
        .iter()
        .filter(|r| !r.id.is_decoy && r.q_value <= threshold)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(score: f32, is_decoy: bool) -> ScoredId {
        ScoredId { score, is_decoy }
    }

    #[test]
    fn clean_separation_gives_low_q() {
        // 10 targets scoring high, 10 decoys scoring low.
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(id(100.0 + i as f32, false));
            ids.push(id(10.0 + i as f32, true));
        }
        let q = compute_q_values(ids);
        // The top-10 (all targets) keep the minimum q-value: with zero
        // decoys above them the +1 convention gives 1/10.
        for rec in &q[..10] {
            assert!(!rec.id.is_decoy);
            assert!(rec.q_value <= 0.1 + 1e-9, "{}", rec.q_value);
        }
    }

    #[test]
    fn interleaved_scores_raise_q() {
        // Alternating target/decoy: FDR near 1 everywhere.
        let mut ids = Vec::new();
        for i in 0..20 {
            ids.push(id(100.0 - i as f32, i % 2 == 1));
        }
        let q = compute_q_values(ids);
        assert!(q.last().unwrap().q_value > 0.8);
    }

    #[test]
    fn q_values_monotone_nonincreasing_toward_top() {
        let ids = vec![
            id(9.0, false),
            id(8.0, false),
            id(7.0, true),
            id(6.0, false),
            id(5.0, true),
            id(4.0, false),
        ];
        let q = compute_q_values(ids);
        for w in q.windows(2) {
            assert!(w[0].q_value <= w[1].q_value);
        }
    }

    #[test]
    fn sorted_by_descending_score() {
        let ids = vec![id(1.0, false), id(5.0, true), id(3.0, false)];
        let q = compute_q_values(ids);
        assert!(q.windows(2).all(|w| w[0].id.score >= w[1].id.score));
    }

    #[test]
    fn accepted_counts_targets_only() {
        let ids = vec![id(10.0, false), id(9.0, false), id(1.0, true)];
        let q = compute_q_values(ids);
        let n = accepted_at(&q, 0.6);
        assert_eq!(n, 2);
        assert_eq!(accepted_at(&q, 0.0), 0); // +1 convention: never exactly 0
    }

    #[test]
    fn empty_input() {
        assert!(compute_q_values(vec![]).is_empty());
        assert_eq!(accepted_at(&[], 0.05), 0);
    }

    #[test]
    fn all_decoys_cap_at_one() {
        let q = compute_q_values(vec![id(5.0, true), id(4.0, true)]);
        assert!(q.iter().all(|r| r.q_value <= 1.0));
    }

    #[test]
    fn tie_prefers_target_first() {
        let q = compute_q_values(vec![id(5.0, true), id(5.0, false)]);
        assert!(!q[0].id.is_decoy);
    }
}
