//! End-to-end pipeline: proteome → digestion → dedup → Algorithm 1 →
//! partition → distributed index → distributed search — one call for
//! examples, integration tests, and the figure harness.

use crate::engine::{run_distributed_search, DistributedSearchReport, EngineConfig};
use crate::grouping::{group_peptides, Grouping, GroupingParams};
use crate::partition::PartitionPolicy;
use lbe_bio::dedup::dedup_peptides;
use lbe_bio::digest::{digest_proteome, DigestParams};
use lbe_bio::peptide::PeptideDb;
use lbe_bio::synthetic::{SyntheticProteome, SyntheticProteomeParams};
use lbe_spectra::preprocess::{preprocess_spectrum, PreprocessParams};
use lbe_spectra::synthetic::{SyntheticDataset, SyntheticDatasetParams};

/// Everything needed for one end-to-end run.
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    /// Synthetic proteome parameters (the UP000005640 stand-in).
    pub proteome: SyntheticProteomeParams,
    /// Digestion settings (paper defaults).
    pub digest: DigestParams,
    /// Algorithm 1 settings.
    pub grouping: GroupingParams,
    /// Engine settings (index config, mods, policy, cost models).
    pub engine: EngineConfig,
    /// Query-dataset parameters (the PXD009072 stand-in).
    pub dataset: SyntheticDatasetParams,
    /// Query preprocessing (paper: top-100 peaks).
    pub preprocess: PreprocessParams,
    /// Number of simulated ranks.
    pub ranks: usize,
}

impl PipelineBuilder {
    /// A laptop-fast configuration: 4 ranks, a small proteome, 30 queries.
    pub fn small_demo() -> Self {
        PipelineBuilder {
            proteome: SyntheticProteomeParams::small(),
            digest: DigestParams::default(),
            grouping: GroupingParams::default(),
            engine: EngineConfig::with_policy(PartitionPolicy::Cyclic),
            dataset: SyntheticDatasetParams {
                num_spectra: 30,
                ..Default::default()
            },
            preprocess: PreprocessParams::default(),
            ranks: 4,
        }
    }

    /// Same pipeline with a different distribution policy.
    pub fn with_policy(mut self, policy: PartitionPolicy) -> Self {
        self.engine.policy = policy;
        self
    }

    /// Same pipeline on a different rank count.
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    /// Runs the full pipeline. `seed` controls proteome and query
    /// generation (two independent streams are derived from it).
    pub fn run(&self, seed: u64) -> PipelineReport {
        let proteome = SyntheticProteome::generate(self.proteome.clone(), seed);
        let digested =
            digest_proteome(&proteome.proteins, &self.digest).expect("digest parameters validated");
        let before_dedup = digested.len();
        let (db, dedup_stats) = dedup_peptides(digested);
        let grouping = group_peptides(&db, &self.grouping);

        let dataset = SyntheticDataset::generate(
            &db,
            &self.engine.modspec,
            &self.dataset,
            seed ^ 0x9E37_79B9,
        );
        let queries: Vec<_> = dataset
            .spectra
            .iter()
            .map(|s| preprocess_spectrum(s, &self.preprocess))
            .collect();

        let search = run_distributed_search(&db, &grouping, &queries, &self.engine, self.ranks);

        let top1_correct = dataset
            .truth
            .iter()
            .enumerate()
            .filter(|&(qi, &t)| search.psms[qi].first().map(|p| p.peptide) == Some(t))
            .count();

        PipelineReport {
            proteins: proteome.proteins.len(),
            peptides_before_dedup: before_dedup,
            peptides: db.len(),
            redundancy: dedup_stats.redundancy(),
            grouping,
            queries: queries.len(),
            top1_correct,
            truth: dataset.truth,
            search,
            db,
        }
    }
}

/// The outcome of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Proteins in the synthetic proteome.
    pub proteins: usize,
    /// Peptides produced by digestion (pre-dedup).
    pub peptides_before_dedup: usize,
    /// Unique peptides indexed.
    pub peptides: usize,
    /// Fraction of digested peptides that were duplicates.
    pub redundancy: f64,
    /// Algorithm 1's output.
    pub grouping: Grouping,
    /// Query spectra searched.
    pub queries: usize,
    /// Queries whose top-1 PSM is the generating peptide.
    pub top1_correct: usize,
    /// Ground-truth peptide id per query.
    pub truth: Vec<u32>,
    /// The distributed-search report (times, imbalance, footprints, PSMs).
    pub search: DistributedSearchReport,
    /// The deduplicated peptide database (kept for inspection).
    pub db: PeptideDb,
}

impl PipelineReport {
    /// Top-1 identification accuracy against ground truth.
    pub fn top1_accuracy(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.top1_correct as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_demo_runs_end_to_end() {
        let report = PipelineBuilder::small_demo().run(7);
        assert!(report.proteins > 0);
        assert!(report.peptides > 0);
        assert!(report.peptides <= report.peptides_before_dedup);
        assert_eq!(report.queries, 30);
        assert_eq!(report.search.ranks, 4);
        report.grouping.validate().unwrap();
    }

    #[test]
    fn identification_accuracy_is_high() {
        let report = PipelineBuilder::small_demo().run(7);
        assert!(
            report.top1_accuracy() >= 0.8,
            "top-1 accuracy {} too low",
            report.top1_accuracy()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = PipelineBuilder::small_demo().run(11);
        let b = PipelineBuilder::small_demo().run(11);
        assert_eq!(a.peptides, b.peptides);
        assert_eq!(a.search.rank_query_times, b.search.rank_query_times);
        assert_eq!(a.top1_correct, b.top1_correct);
    }

    #[test]
    fn policies_change_times_not_results() {
        let base = PipelineBuilder::small_demo();
        let cyc = base.clone().with_policy(PartitionPolicy::Cyclic).run(3);
        let chk = base.clone().with_policy(PartitionPolicy::Chunk).run(3);
        // Same total candidates regardless of where peptides live.
        assert_eq!(cyc.search.total_candidates, chk.search.total_candidates);
        assert_eq!(cyc.top1_correct, chk.top1_correct);
    }

    #[test]
    fn rank_count_change_preserves_results() {
        let base = PipelineBuilder::small_demo();
        let r2 = base.clone().with_ranks(2).run(5);
        let r8 = base.clone().with_ranks(8).run(5);
        assert_eq!(r2.search.total_candidates, r8.search.total_candidates);
        assert_eq!(r2.top1_correct, r8.top1_correct);
        assert_eq!(r2.search.ranks, 2);
        assert_eq!(r8.search.ranks, 8);
    }
}
