//! PR 10's fault-tolerance surface, tested from the outside:
//!
//! * **fault-plan fuzzing** — arbitrary strings fed to `FaultPlan::parse`
//!   produce a plan or a typed error, never a panic; valid plans
//!   round-trip through their canonical `Display` form; and the seeded
//!   fault stream replays bit-identically, whatever the plan;
//! * the **chaos matrix** — the collective gauntlet run over an
//!   in-process mesh whose master wears a [`FaultyTransport`] with random
//!   drop/delay plans: every run either matches the clean run
//!   bit-for-bit or surfaces typed `CommError`s, and always terminates
//!   (bounded by receive timeouts, so the test completing *is* the
//!   no-hang assertion);
//! * **supervised recovery** — `cluster_search_rank_supervised` with a
//!   worker severed mid-protocol produces PSMs byte-identical to the
//!   clean run, with the loss recorded in the report;
//! * **TCP self-healing** — a severed link heals transparently under the
//!   reconnect policy (next-epoch handshake), and healing a truly dead
//!   peer fails as a typed `Disconnected`.

use lbe::cluster::{
    CommCostModel, CommError, Communicator, FaultPlan, FaultRule, FaultyTransport, Hostfile,
    RetryPolicy, SimTransport, TcpConfig, TcpTransport, Transport,
};
use lbe::core::{
    cluster_search_rank, cluster_search_rank_supervised, DistributedSearchReport, EngineConfig,
};
use lbe::prelude::*;
use proptest::prelude::*;
use std::net::TcpListener;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Fault-plan fuzzing
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable input never panics the plan parser — any
    /// outcome is a clean `Ok`/`Err`.
    #[test]
    fn fault_plan_parser_survives_garbage(s in "[ -~]{0,60}") {
        let _ = FaultPlan::parse(&s);
    }

    /// Near-miss grammar (right keys, junk values, stray separators) also
    /// parses or rejects cleanly.
    #[test]
    fn fault_plan_parser_survives_near_grammar(
        parts in prop::collection::vec((0usize..8, "[0-9.:x-]{0,8}"), 0..6)
    ) {
        let keys = ["seed", "rank", "drop", "delay", "dup", "corrupt", "kill", "die"];
        let s: String = parts
            .iter()
            .map(|(k, v)| format!("{}={v};", keys[*k]))
            .collect();
        let _ = FaultPlan::parse(&s);
    }

    /// Every representable plan round-trips through its canonical
    /// `Display` form.
    #[test]
    fn fault_plan_display_round_trips(
        seed in any::<u64>(),
        rank in (any::<bool>(), 0usize..32),
        drop_prob in (any::<bool>(), 0.001f64..1.0),
        delay in (any::<bool>(), 0.001f64..1.0, 0u64..500),
        dup_prob in (any::<bool>(), 0.001f64..1.0),
        corrupt_prob in (any::<bool>(), 0.001f64..1.0),
        kills in prop::collection::vec((0usize..32, any::<bool>(), 0u32..1000, 1u64..100), 0..4),
        dies in prop::collection::vec(1u64..100, 0..2),
    ) {
        let mut plan = FaultPlan::none();
        plan.seed = seed;
        plan.rank = rank.0.then_some(rank.1);
        plan.drop_prob = if drop_prob.0 { drop_prob.1 } else { 0.0 };
        if delay.0 {
            plan.delay_prob = delay.1;
            plan.delay = Duration::from_millis(delay.2);
        }
        plan.dup_prob = if dup_prob.0 { dup_prob.1 } else { 0.0 };
        plan.corrupt_prob = if corrupt_prob.0 { corrupt_prob.1 } else { 0.0 };
        for (peer, tagged, tag, nth) in kills {
            plan.rules.push(FaultRule {
                peer: Some(peer),
                tag: tagged.then_some(tag),
                nth,
                action: lbe::cluster::FaultAction::KillPeer,
            });
        }
        for nth in dies {
            plan.rules.push(FaultRule {
                peer: None,
                tag: None,
                nth,
                action: lbe::cluster::FaultAction::Die,
            });
        }
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        prop_assert_eq!(plan, reparsed);
    }
}

proptest! {
    // Each case builds a mesh and pushes up to 48 frames twice; keep the
    // case count modest so the whole property stays sub-second.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the plan, the seeded fault schedule is a pure function of
    /// `(plan, op sequence)`: two identical runs deliver identical frames.
    #[test]
    fn any_plan_replays_bit_identically_from_its_seed(
        seed in any::<u64>(),
        drop_prob in 0.0f64..0.6,
        dup_prob in 0.0f64..0.4,
        corrupt_prob in 0.0f64..0.4,
        frames in 1usize..48,
    ) {
        let run = || {
            let mut endpoints = SimTransport::mesh(2).into_iter();
            let t0 = endpoints.next().unwrap();
            let mut t1 = endpoints.next().unwrap();
            let mut plan = FaultPlan::none();
            plan.seed = seed;
            plan.drop_prob = drop_prob;
            plan.dup_prob = dup_prob;
            plan.corrupt_prob = corrupt_prob;
            let mut faulty = FaultyTransport::wrap(Box::new(t0), plan);
            for i in 0..frames {
                let bytes = vec![i as u8, (i as u8) ^ 0xA5, 0x5A];
                let frame = lbe::cluster::Frame {
                    payload: lbe::cluster::Payload::Bytes(bytes),
                    sent_at: 0.0,
                    sim_bytes: 3,
                };
                faulty.send(1, 9, frame).unwrap();
            }
            let mut delivered = Vec::new();
            while let Ok(f) = t1.recv(0, 9, Duration::from_millis(20)) {
                match f.payload {
                    lbe::cluster::Payload::Bytes(b) => delivered.push(b),
                    _ => unreachable!("sim frames are bytes here"),
                }
            }
            delivered
        };
        prop_assert_eq!(run(), run());
    }
}

// ---------------------------------------------------------------------------
// Chaos matrix: collectives under random drop/delay plans
// ---------------------------------------------------------------------------

/// A compact gauntlet over the fallible collective surface; any injected
/// fault anywhere changes (or errors) the output.
type GauntletOut = (String, u64, Vec<u16>, i64);

fn try_gauntlet(comm: &mut Communicator) -> Result<GauntletOut, CommError> {
    let me = comm.rank();
    let p = comm.size();
    comm.try_send((me + 1) % p, 7, me as u32, 4)?;
    let left = comm.try_recv::<u32>((me + p - 1) % p, 7)?;
    let bcast = comm.try_broadcast(0, (me == 0).then(|| format!("go:{left}")), 8)?;
    let reduced = comm.try_all_reduce((me as u64 + 1) * 100, |a, b| a + b, 8)?;
    let all = comm.try_all_gather(me as u16, 2)?;
    let scattered = comm.try_scatter(0, (me == 0).then(|| (0..p as i64).collect()), 8)?;
    comm.try_barrier()?;
    Ok((bcast, reduced, all, scattered))
}

/// Runs the gauntlet on a `p`-rank mesh, the master's transport wrapped
/// with `plan`. Short receive timeouts bound every blocking point, so a
/// lost frame degrades into a typed error instead of a hang.
fn chaos_run(
    p: usize,
    plan: &FaultPlan,
    retry: RetryPolicy,
) -> Vec<Result<GauntletOut, CommError>> {
    let endpoints = SimTransport::mesh(p);
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                let plan = plan.clone();
                let retry = retry.clone();
                scope.spawn(move || {
                    let transport: Box<dyn Transport> = if rank == 0 {
                        Box::new(FaultyTransport::wrap(Box::new(t), plan))
                    } else {
                        Box::new(t)
                    };
                    let mut comm = Communicator::over(
                        transport,
                        CommCostModel::default(),
                        Duration::from_millis(200),
                    )
                    .with_retry(retry);
                    try_gauntlet(&mut comm)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn chaos_matrix_is_bit_identical_or_typed_error() {
    let p = 4;
    let clean = chaos_run(p, &FaultPlan::none(), RetryPolicy::none());
    let clean: Vec<GauntletOut> = clean.into_iter().map(|r| r.unwrap()).collect();

    let plans = [
        "seed=1;delay=0.6:2",          // delays only: must still succeed exactly
        "seed=2;delay=0.9:1",          // heavier delays, still lossless
        "seed=3;drop=0.15",            // occasional loss
        "seed=4;drop=0.4",             // heavy loss
        "seed=5;drop=0.9",             // almost nothing gets through
        "seed=6;drop=0.2;delay=0.3:2", // loss and delay together
    ];
    let mut saw_error = false;
    for spec in plans {
        let plan = FaultPlan::parse(spec).unwrap();
        let lossless = plan.drop_prob == 0.0;
        let out = chaos_run(p, &plan, RetryPolicy::none());
        let mut ok_results = Vec::new();
        for (rank, r) in out.into_iter().enumerate() {
            match r {
                Ok(v) => ok_results.push((rank, v)),
                Err(e) => {
                    saw_error = true;
                    // Typed by construction; spot-check the context too.
                    match e {
                        CommError::Timeout { .. }
                        | CommError::Disconnected { .. }
                        | CommError::Io { .. }
                        | CommError::Codec { .. }
                        | CommError::Setup { .. } => {}
                    }
                    assert!(
                        !lossless,
                        "{spec}: delay-only plan must not error at rank {rank}"
                    );
                }
            }
        }
        if lossless {
            assert_eq!(
                ok_results.len(),
                p,
                "{spec}: delay-only plan must succeed everywhere"
            );
        }
        // Any rank that *did* finish must have computed exactly the clean
        // answer: faults may kill a run, never silently skew it.
        for (rank, v) in ok_results {
            assert_eq!(
                v, clean[rank],
                "{spec}: rank {rank} diverged from the clean run"
            );
        }
    }
    assert!(
        saw_error,
        "the drop plans must produce at least one typed error"
    );
}

#[test]
fn chaos_with_retry_policy_still_terminates_cleanly() {
    // The retry policy multiplies each blocking point by its attempt
    // budget; the invariant (identical or typed error, bounded time) must
    // survive retries too.
    let p = 3;
    let clean: Vec<GauntletOut> = chaos_run(p, &FaultPlan::none(), RetryPolicy::none())
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let plan = FaultPlan::parse("seed=11;drop=0.3").unwrap();
    let retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter: 0.5,
        deadline: Duration::from_millis(600),
        seed: 7,
    };
    for (rank, r) in chaos_run(p, &plan, retry).into_iter().enumerate() {
        if let Ok(v) = r {
            assert_eq!(v, clean[rank], "rank {rank} diverged under retries");
        }
    }
}

// ---------------------------------------------------------------------------
// Supervised recovery: lost ranks re-executed bit-identically
// ---------------------------------------------------------------------------

fn fixture() -> (PeptideDb, Grouping, Vec<Spectrum>) {
    use lbe::bio::mods::ModSpec;
    use lbe::bio::peptide::Peptide;
    use lbe::spectra::synthetic::{SyntheticDataset, SyntheticDatasetParams};
    let seqs = [
        "ELVISLIVESK",
        "ELVISLIVESR",
        "PEPTIDEK",
        "PEPTIDER",
        "SAMPLERK",
        "SAMPLERR",
        "MNKQMGGR",
        "WWYYFFHHK",
    ];
    let db = PeptideDb::from_vec(
        seqs.iter()
            .map(|s| Peptide::new(s.as_bytes(), 0, 0).unwrap())
            .collect(),
    );
    let grouping = group_peptides(&db, &GroupingParams::default());
    let queries = SyntheticDataset::generate(
        &db,
        &ModSpec::none(),
        &SyntheticDatasetParams {
            num_spectra: 10,
            ..Default::default()
        },
        11,
    );
    (db, grouping, queries.spectra)
}

/// Clean (unsupervised) sim run, the byte-exact baseline.
fn clean_report(
    db: &PeptideDb,
    grouping: &Grouping,
    queries: &[Spectrum],
    cfg: &EngineConfig,
    ranks: usize,
) -> DistributedSearchReport {
    let out = Cluster::new(ClusterConfig::new(ranks))
        .run(|comm| cluster_search_rank(comm, db, grouping, queries, cfg).unwrap());
    out.results
        .into_iter()
        .next()
        .flatten()
        .expect("rank 0 report")
}

/// Supervised run over a hand-built mesh with `plan` on the master's
/// transport. Returns the master's report and each worker's outcome.
#[allow(clippy::type_complexity)]
fn supervised_run(
    db: &PeptideDb,
    grouping: &Grouping,
    queries: &[Spectrum],
    cfg: &EngineConfig,
    ranks: usize,
    plan: &FaultPlan,
) -> (
    DistributedSearchReport,
    Vec<Result<Option<DistributedSearchReport>, CommError>>,
) {
    let endpoints = SimTransport::mesh(ranks);
    let mut results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                let plan = plan.clone();
                scope.spawn(move || {
                    if rank == 0 {
                        let transport = FaultyTransport::wrap(Box::new(t), plan);
                        let mut comm = Communicator::over(
                            Box::new(transport),
                            CommCostModel::default(),
                            Duration::from_millis(500),
                        )
                        .with_retry(RetryPolicy::standard());
                        cluster_search_rank_supervised(&mut comm, db, grouping, queries, cfg)
                    } else {
                        let mut comm = Communicator::over(
                            Box::new(t),
                            CommCostModel::default(),
                            Duration::from_millis(500),
                        );
                        cluster_search_rank(&mut comm, db, grouping, queries, cfg)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let workers = results.split_off(1);
    let report = results
        .pop()
        .unwrap()
        .expect("supervised master must not error")
        .expect("master returns the report");
    (report, workers)
}

#[test]
fn supervised_clean_run_matches_unsupervised() {
    let (db, grouping, queries) = fixture();
    let cfg = EngineConfig::with_policy(PartitionPolicy::Cyclic);
    let plain = clean_report(&db, &grouping, &queries, &cfg, 3);
    let sup = Cluster::new(ClusterConfig::new(3))
        .run(|comm| cluster_search_rank_supervised(comm, &db, &grouping, &queries, &cfg).unwrap());
    let sup = sup
        .results
        .into_iter()
        .next()
        .flatten()
        .expect("rank 0 report");
    assert_eq!(sup.psms, plain.psms);
    assert_eq!(sup.total_candidates, plain.total_candidates);
    assert_eq!(sup.per_rank_stats, plain.per_rank_stats);
    assert_eq!(sup.partition_sizes, plain.partition_sizes);
    // Supervision is recorded even when nothing went wrong; the plain run
    // records nothing.
    let rec = sup
        .recovery
        .as_ref()
        .expect("supervised runs record recovery");
    assert!(rec.ranks_lost.is_empty());
    assert_eq!(rec.queries_reexecuted, 0);
    assert!(plain.recovery.is_none());
}

#[test]
fn worker_lost_mid_gather_is_recovered_bit_identically() {
    let (db, grouping, queries) = fixture();
    let cfg = EngineConfig::with_policy(PartitionPolicy::Cyclic);
    let want = clean_report(&db, &grouping, &queries, &cfg, 3);

    // Master ops against peer 2: barrier-up recv (1), barrier-down send
    // (2), PSM-gather recv (3). Severing at op 3 models a worker that died
    // after searching but before delivering results.
    let plan = FaultPlan::parse("kill=2:3").unwrap();
    let (report, workers) = supervised_run(&db, &grouping, &queries, &cfg, 3, &plan);
    assert_eq!(
        report.psms, want.psms,
        "recovered PSMs must be byte-identical"
    );
    assert_eq!(report.total_candidates, want.total_candidates);
    let rec = report.recovery.as_ref().expect("recovery recorded");
    assert_eq!(rec.ranks_lost, vec![2]);
    assert_eq!(rec.queries_reexecuted, queries.len());
    // Rank 1 was untouched; rank 2 itself completed (only its results were
    // lost in flight from the master's point of view).
    assert!(workers[0].is_ok());
    assert!(workers[1].is_ok());
}

#[test]
fn worker_lost_at_barrier_is_recovered_bit_identically() {
    let (db, grouping, queries) = fixture();
    let cfg = EngineConfig::with_policy(PartitionPolicy::Cyclic);
    let want = clean_report(&db, &grouping, &queries, &cfg, 3);

    // Severed at the very first op against it: the master never even
    // completes the opening barrier with rank 2 and must re-execute its
    // whole share.
    let plan = FaultPlan::parse("kill=2:1").unwrap();
    let (report, workers) = supervised_run(&db, &grouping, &queries, &cfg, 3, &plan);
    assert_eq!(
        report.psms, want.psms,
        "recovered PSMs must be byte-identical"
    );
    let rec = report.recovery.as_ref().expect("recovery recorded");
    assert_eq!(rec.ranks_lost, vec![2]);
    assert_eq!(rec.queries_reexecuted, queries.len());
    // Rank 1 finishes; the abandoned rank 2 times out waiting for the
    // barrier release it will never get — a typed error, not a hang.
    assert!(workers[0].is_ok());
    assert!(matches!(
        workers[1],
        Err(CommError::Timeout { .. }) | Err(CommError::Disconnected { .. })
    ));
}

// ---------------------------------------------------------------------------
// TCP self-healing
// ---------------------------------------------------------------------------

/// Two raw TCP transports over loopback (no Communicator), so the test
/// can drive `sever` directly.
fn tcp_pair() -> (TcpTransport, TcpTransport) {
    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let hostfile =
        Hostfile::from_addrs(listeners.iter().map(|l| l.local_addr().unwrap()).collect());
    let hf = &hostfile;
    let mut ts = std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                scope.spawn(move || {
                    TcpTransport::connect_with_listener(hf, rank, listener, &TcpConfig::default())
                        .unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    let t1 = ts.pop().unwrap();
    let t0 = ts.pop().unwrap();
    (t0, t1)
}

fn byte_frame(bytes: &[u8]) -> lbe::cluster::Frame {
    lbe::cluster::Frame {
        payload: lbe::cluster::Payload::Bytes(bytes.to_vec()),
        sent_at: 0.0,
        sim_bytes: bytes.len(),
    }
}

fn frame_bytes(f: lbe::cluster::Frame) -> Vec<u8> {
    match f.payload {
        lbe::cluster::Payload::Bytes(b) => b,
        _ => panic!("expected bytes"),
    }
}

#[test]
fn tcp_severed_link_heals_transparently_with_next_epoch() {
    let (t0, t1) = tcp_pair();
    std::thread::scope(|scope| {
        let a = scope.spawn(move || {
            let mut t0 = t0;
            // Before the cut.
            let got = frame_bytes(t0.recv(1, 5, Duration::from_secs(5)).unwrap());
            assert_eq!(got, b"one");
            // Rank 1 severs now; our next receive trips over the dead
            // socket, heals on our retained listener (epoch 1), and still
            // delivers the frame sent on the fresh stream.
            let got = frame_bytes(t0.recv(1, 5, Duration::from_secs(5)).unwrap());
            assert_eq!(got, b"two");
            t0.send(1, 6, byte_frame(b"ack")).unwrap();
        });
        let b = scope.spawn(move || {
            let mut t1 = t1;
            t1.send(0, 5, byte_frame(b"one")).unwrap();
            // Give rank 0 a moment to finish reading "one" on the old
            // stream before we tear it down under it.
            std::thread::sleep(Duration::from_millis(100));
            t1.sever(0);
            // The dialing side of the heal: this send redials rank 0 and
            // handshakes with the next epoch before writing.
            t1.send(0, 5, byte_frame(b"two")).unwrap();
            let got = frame_bytes(t1.recv(0, 6, Duration::from_secs(5)).unwrap());
            assert_eq!(got, b"ack");
        });
        a.join().unwrap();
        b.join().unwrap();
    });
}

#[test]
fn tcp_healing_a_dead_peer_fails_as_typed_disconnect() {
    let (t0, t1) = tcp_pair();
    drop(t0); // rank 0 is gone: listener and sockets closed
    let mut t1 = t1;
    t1.sever(0);
    let err = t1.send(0, 5, byte_frame(b"hello")).unwrap_err();
    assert!(
        matches!(
            err,
            CommError::Disconnected {
                rank: 1,
                peer: 0,
                ..
            }
        ),
        "{err}"
    );
}
