//! Integration tests: the §II-A filtration baselines against the SLM path,
//! format interoperability (MS2 / MGF / mzML carry the same search), and
//! the real-thread parallel searcher inside the full pipeline.

use lbe::bio::mods::ModSpec;
use lbe::core::pipeline::PipelineBuilder;
use lbe::index::parallel::search_batch_parallel;
use lbe::index::{IndexBuilder, PrecursorIndex, Searcher, SlmConfig, TagIndex};
use lbe::spectra::mgf::{read_mgf, write_mgf};
use lbe::spectra::ms2::{read_ms2, write_ms2};
use lbe::spectra::mzml::{read_mzml, write_mzml};
use lbe::spectra::preprocess::{preprocess_spectrum, PreprocessParams};
use lbe::spectra::spectrum::Spectrum;
use lbe::spectra::synthetic::{SyntheticDataset, SyntheticDatasetParams};

fn workload() -> (lbe::bio::peptide::PeptideDb, Vec<Spectrum>, Vec<u32>) {
    let report = PipelineBuilder::small_demo().run(321);
    let db = report.db;
    let dataset = SyntheticDataset::generate(
        &db,
        &ModSpec::none(),
        &SyntheticDatasetParams {
            num_spectra: 25,
            ..Default::default()
        },
        322,
    );
    let pre = PreprocessParams::default();
    let queries = dataset
        .spectra
        .iter()
        .map(|s| preprocess_spectrum(s, &pre))
        .collect();
    (db, queries, dataset.truth)
}

#[test]
fn precursor_filter_never_loses_truth_with_matching_tolerance() {
    let (db, queries, truth) = workload();
    let idx = PrecursorIndex::build(&db);
    // Queries carry ≤10 ppm precursor error; ±0.5 Da dominates that at
    // tryptic masses, so the generating peptide always survives the cut.
    for (q, &t) in queries.iter().zip(&truth) {
        let (cands, _) = idx.candidates(q, 0.5);
        assert!(cands.contains(&t), "scan {}", q.scan);
    }
}

#[test]
fn tag_filter_reduces_space_but_keeps_most_truths() {
    let (db, queries, truth) = workload();
    let idx = TagIndex::build(&db);
    let mut kept = 0usize;
    let mut total_candidates = 0u64;
    for (q, &t) in queries.iter().zip(&truth) {
        let (cands, stats) = idx.candidates(q, 0.02);
        total_candidates += stats.candidates;
        if cands.contains(&t) {
            kept += 1;
        }
    }
    // Tags are noise-sensitive; require substantial-but-not-perfect recall
    // and a real reduction versus scoring everything.
    assert!(
        kept >= queries.len() * 7 / 10,
        "kept only {kept}/{}",
        queries.len()
    );
    assert!(
        total_candidates < (db.len() * queries.len()) as u64 / 2,
        "tag filter did not reduce the space"
    );
}

#[test]
fn slm_agrees_with_itself_across_filtration_baselines() {
    // Sanity triangle: every peptide the SLM search ranks top-1 must also
    // be admitted by the (loose) precursor filter — the filters are nested.
    let (db, queries, _) = workload();
    let slm = IndexBuilder::new(SlmConfig::default(), ModSpec::none()).build(&db);
    let pre = PrecursorIndex::build(&db);
    let mut searcher = Searcher::new(&slm);
    for q in &queries {
        if let Some(top) = searcher.search(q).psms.first() {
            let (cands, _) = pre.candidates(q, 5000.0);
            assert!(cands.contains(&top.peptide));
        }
    }
}

#[test]
fn all_three_formats_preserve_search_results() {
    let (db, queries, _) = workload();
    let slm = IndexBuilder::new(SlmConfig::default(), ModSpec::none()).build(&db);
    let mut searcher = Searcher::new(&slm);
    let reference: Vec<_> = queries.iter().map(|q| searcher.search(q)).collect();

    // MS2.
    let mut buf = Vec::new();
    write_ms2(&mut buf, &queries).unwrap();
    let ms2_back = read_ms2(&buf[..]).unwrap();
    // MGF.
    let mut buf2 = Vec::new();
    write_mgf(&mut buf2, &queries).unwrap();
    let mgf_back = read_mgf(&buf2[..]).unwrap();
    // mzML (bit-exact arrays).
    let mut buf3 = Vec::new();
    write_mzml(&mut buf3, &queries).unwrap();
    let mzml_back = read_mzml(&buf3[..]).unwrap();

    for (name, loaded) in [("ms2", ms2_back), ("mgf", mgf_back), ("mzml", mzml_back)] {
        assert_eq!(loaded.len(), queries.len(), "{name}");
        for (qi, q) in loaded.iter().enumerate() {
            let r = searcher.search(q);
            let ref_ids: Vec<u32> = reference[qi].psms.iter().map(|p| p.peptide).collect();
            let got_ids: Vec<u32> = r.psms.iter().map(|p| p.peptide).collect();
            assert_eq!(got_ids, ref_ids, "{name} query {qi}");
        }
    }
}

#[test]
fn parallel_search_matches_sequential_on_pipeline_workload() {
    let (db, queries, truth) = workload();
    let slm = IndexBuilder::new(SlmConfig::default(), ModSpec::none()).build(&db);
    let (seq, seq_stats) = search_batch_parallel(&slm, &queries, 1);
    let (par, par_stats) = search_batch_parallel(&slm, &queries, 4);
    assert_eq!(seq, par);
    assert_eq!(seq_stats, par_stats);
    // And it actually identifies things.
    let top1 = par
        .iter()
        .zip(&truth)
        .filter(|(r, &t)| r.psms.first().map(|p| p.peptide) == Some(t))
        .count();
    assert!(
        top1 >= queries.len() * 8 / 10,
        "top1 {top1}/{}",
        queries.len()
    );
}
