//! Property-based tests over the workspace's core invariants (proptest).

use lbe::bio::aa::{neutral_mass_from_mz, peptide_neutral_mass, precursor_mz};
use lbe::bio::digest::{cleavage_sites, digest_protein, DigestParams, Enzyme};
use lbe::bio::fasta::{read_fasta, write_fasta, Protein};
use lbe::bio::mods::{enumerate_modforms, ModSpec};
use lbe::bio::peptide::{Peptide, PeptideDb};
use lbe::core::distance::{edit_distance, edit_distance_bounded};
use lbe::core::grouping::{group_peptides, Grouping, GroupingCriterion, GroupingParams};
use lbe::core::mapping::MappingTable;
use lbe::core::partition::{partition_groups, PartitionPolicy};
use lbe::index::query::brute_force_shared_peaks;
use lbe::index::{IndexBuilder, Searcher, SlmConfig};
use lbe::spectra::mgf::{read_mgf, write_mgf};
use lbe::spectra::ms2::{read_ms2, write_ms2};
use lbe::spectra::mzml::{read_mzml, write_mzml};
use lbe::spectra::spectrum::{Peak, Spectrum};
use lbe::spectra::theo::{TheoParams, TheoSpectrum};
use proptest::prelude::*;

/// Strategy: a peptide-like uppercase sequence over the 20 standard codes.
fn peptide_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(b"ACDEFGHIKLMNPQRSTVWY".to_vec()),
        1..=max_len,
    )
}

/// Strategy: arbitrary (possibly non-standard) ASCII letter sequences.
fn letters(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(b"ABCDEFGHIJKLMNOPQRSTUVWXYZ".to_vec()),
        0..=max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- edit distance: metric axioms + band agreement ----------

    #[test]
    fn edit_distance_identity(a in letters(24)) {
        prop_assert_eq!(edit_distance(&a, &a), 0);
    }

    #[test]
    fn edit_distance_symmetry(a in letters(20), b in letters(20)) {
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn edit_distance_triangle(a in letters(12), b in letters(12), c in letters(12)) {
        let ab = edit_distance(&a, &b);
        let bc = edit_distance(&b, &c);
        let ac = edit_distance(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn edit_distance_bounded_by_max_len(a in letters(20), b in letters(20)) {
        let d = edit_distance(&a, &b);
        prop_assert!(d <= a.len().max(b.len()));
        prop_assert!(d >= a.len().abs_diff(b.len()));
    }

    #[test]
    fn banded_agrees_with_full(a in letters(20), b in letters(20), k in 0usize..12) {
        let full = edit_distance(&a, &b);
        match edit_distance_bounded(&a, &b, k) {
            Some(d) => prop_assert_eq!(d, full),
            None => prop_assert!(full > k),
        }
    }

    // ---------- mass computation ----------

    #[test]
    fn peptide_mass_positive_and_additive(a in peptide_seq(30), b in peptide_seq(30)) {
        let ma = peptide_neutral_mass(&a).unwrap();
        let mb = peptide_neutral_mass(&b).unwrap();
        let mut ab = a.clone();
        ab.extend_from_slice(&b);
        let mab = peptide_neutral_mass(&ab).unwrap();
        // Concatenation: one fewer water than the sum of both.
        let water = lbe::bio::aa::WATER_MASS;
        prop_assert!((mab - (ma + mb - water)).abs() < 1e-6);
        prop_assert!(ma > 0.0);
    }

    #[test]
    fn mz_round_trip(mass in 100.0f64..5000.0, z in 1u8..5) {
        let mz = precursor_mz(mass, z);
        prop_assert!((neutral_mass_from_mz(mz, z) - mass).abs() < 1e-9);
    }

    // ---------- digestion ----------

    #[test]
    fn digestion_respects_windows(seq in peptide_seq(120)) {
        let params = DigestParams::default();
        let protein = Protein::new("p", &seq);
        for pep in digest_protein(&protein, 0, &params) {
            prop_assert!(pep.len() >= params.min_len && pep.len() <= params.max_len);
            prop_assert!(pep.mass() >= params.min_mass && pep.mass() <= params.max_mass);
        }
    }

    #[test]
    fn zero_missed_cleavage_fragments_tile_protein(seq in peptide_seq(100)) {
        // With no windows and 0 missed cleavages, fragments reassemble the
        // protein exactly.
        let params = DigestParams {
            max_missed_cleavages: 0,
            min_len: 1,
            max_len: 10_000,
            min_mass: 0.0,
            max_mass: f64::INFINITY,
            ..DigestParams::default()
        };
        let protein = Protein::new("p", &seq);
        let peps = digest_protein(&protein, 0, &params);
        let joined: Vec<u8> = peps.iter().flat_map(|p| p.sequence().to_vec()).collect();
        prop_assert_eq!(joined, seq);
    }

    #[test]
    fn cleavage_sites_follow_keil_rule(seq in peptide_seq(80)) {
        let sites = cleavage_sites(&seq, Enzyme::Trypsin);
        for &s in &sites[1..sites.len().saturating_sub(1)] {
            prop_assert!(matches!(seq[s - 1], b'K' | b'R'));
            prop_assert!(seq[s] != b'P');
        }
    }

    #[test]
    fn missed_cleavage_count_spans(seq in peptide_seq(100), mc in 0u8..4) {
        let params = DigestParams {
            max_missed_cleavages: mc,
            min_len: 1,
            max_len: 10_000,
            min_mass: 0.0,
            max_mass: f64::INFINITY,
            ..DigestParams::default()
        };
        let protein = Protein::new("p", &seq);
        for pep in digest_protein(&protein, 0, &params) {
            prop_assert!(pep.missed_cleavages() <= mc);
        }
    }

    // ---------- modforms ----------

    #[test]
    fn modforms_unique_and_bounded(seq in peptide_seq(12)) {
        let spec = ModSpec::paper_default();
        let forms = enumerate_modforms(&seq, &spec);
        prop_assert!(!forms.is_empty());
        prop_assert!(forms[0].is_unmodified());
        prop_assert!(forms.len() <= spec.max_modforms_per_peptide);
        let mut sites: Vec<_> = forms.iter().map(|f| f.sites.clone()).collect();
        let n = sites.len();
        sites.sort();
        sites.dedup();
        prop_assert_eq!(sites.len(), n, "duplicate modforms");
        for f in &forms {
            prop_assert!(f.num_mods() <= spec.max_mods_per_peptide);
        }
    }

    // ---------- theoretical spectra ----------

    #[test]
    fn theo_spectrum_fragments_below_precursor(seq in peptide_seq(25)) {
        prop_assume!(seq.len() >= 2);
        let theo = TheoSpectrum::from_sequence(
            &seq,
            &lbe::bio::mods::ModForm::unmodified(),
            &ModSpec::none(),
            &TheoParams::default(),
        );
        prop_assert_eq!(theo.fragment_count(), 2 * (seq.len() - 1));
        let limit = theo.precursor_mass + 2.0 * lbe::bio::aa::PROTON_MASS;
        for &mz in &theo.fragment_mzs {
            prop_assert!(mz > 0.0 && mz < limit);
        }
        prop_assert!(theo.fragment_mzs.windows(2).all(|w| w[0] <= w[1]));
    }

    // ---------- grouping ----------

    #[test]
    fn grouping_is_exact_cover(seqs in prop::collection::vec(peptide_seq(15), 1..40), gsize in 1usize..10) {
        let db = PeptideDb::from_vec(
            seqs.iter().map(|s| Peptide::new(s, 0, 0).unwrap()).collect(),
        );
        let g = group_peptides(&db, &GroupingParams {
            criterion: GroupingCriterion::Absolute { d: 2 },
            gsize,
        });
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.group_sizes.iter().all(|&s| s as usize <= gsize));
        prop_assert_eq!(g.num_peptides(), db.len());
    }

    // ---------- partitioning + mapping ----------

    #[test]
    fn partitions_are_exact_covers(
        n in 0usize..200,
        p in 1usize..20,
        seed in any::<u64>(),
        policy_idx in 0usize..4,
    ) {
        let grouping = Grouping::trivial(n);
        let policy = match policy_idx {
            0 => PartitionPolicy::Chunk,
            1 => PartitionPolicy::Cyclic,
            2 => PartitionPolicy::Random { seed },
            _ => PartitionPolicy::RandomWithinGroups { seed },
        };
        let part = partition_groups(&grouping, p, policy);
        prop_assert!(part.validate(n).is_ok());
        let (min, max) = part.load_spread();
        prop_assert!(max - min <= 1, "{policy}: {min}..{max}");
        // Mapping table round trip.
        let map = MappingTable::from_partition(&part);
        for (m, list) in part.ranks.iter().enumerate() {
            for (local, &global) in list.iter().enumerate() {
                prop_assert_eq!(map.global_of(m, local as u32), global);
            }
        }
    }

    // ---------- quantization/tolerance ----------

    #[test]
    fn nearby_mz_within_tolerance_bins(mz in 50.0f64..4000.0, delta in -0.04f64..0.04) {
        let cfg = SlmConfig::default();
        let a = cfg.bin_of(mz).unwrap();
        let b = cfg.bin_of(mz + delta).unwrap();
        prop_assert!(a.abs_diff(b) <= cfg.tolerance_bins());
    }

    // ---------- file formats ----------

    #[test]
    fn fasta_round_trip(records in prop::collection::vec((r"[a-zA-Z0-9 |_.-]{1,30}", peptide_seq(80)), 0..8)) {
        let proteins: Vec<Protein> = records
            .iter()
            .map(|(h, s)| Protein::new(h.trim(), s))
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &proteins).unwrap();
        let back = read_fasta(&buf[..]).unwrap();
        prop_assert_eq!(back, proteins);
    }

    #[test]
    fn ms2_round_trip(
        spectra in prop::collection::vec(
            (1u32..100_000, 100.0f64..2000.0, 1u8..5,
             prop::collection::vec((50.0f64..3000.0, 0.1f32..1e5), 0..40)),
            0..6,
        )
    ) {
        let spectra: Vec<Spectrum> = spectra
            .into_iter()
            .map(|(scan, pmz, z, peaks)| {
                Spectrum::new(scan, pmz, z, peaks.into_iter().map(|(m, i)| Peak::new(m, i)).collect())
            })
            .collect();
        let mut buf = Vec::new();
        write_ms2(&mut buf, &spectra).unwrap();
        let back = read_ms2(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), spectra.len());
        for (a, b) in back.iter().zip(&spectra) {
            prop_assert_eq!(a.scan, b.scan);
            prop_assert_eq!(a.charge, b.charge);
            prop_assert!((a.precursor_mz - b.precursor_mz).abs() < 1e-4);
            prop_assert_eq!(a.peak_count(), b.peak_count());
            for (pa, pb) in a.peaks.iter().zip(&b.peaks) {
                prop_assert!((pa.mz - pb.mz).abs() < 1e-4);
                prop_assert!((pa.intensity - pb.intensity).abs() / pb.intensity.max(1.0) < 0.01);
            }
        }
    }

    #[test]
    fn mzml_round_trip_bit_exact(
        spectra in prop::collection::vec(
            (1u32..100_000, 100.0f64..2000.0, 1u8..5,
             prop::collection::vec((50.0f64..3000.0, 0.1f32..1e5), 0..25)),
            0..5,
        )
    ) {
        let spectra: Vec<Spectrum> = spectra
            .into_iter()
            .map(|(scan, pmz, z, peaks)| {
                Spectrum::new(scan, pmz, z, peaks.into_iter().map(|(m, i)| Peak::new(m, i)).collect())
            })
            .collect();
        let mut buf = Vec::new();
        write_mzml(&mut buf, &spectra).unwrap();
        let back = read_mzml(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), spectra.len());
        for (a, b) in back.iter().zip(&spectra) {
            prop_assert_eq!(a.scan, b.scan);
            prop_assert_eq!(a.charge, b.charge);
            // Binary arrays are bit-exact, unlike the text formats.
            prop_assert_eq!(&a.peaks, &b.peaks);
        }
    }

    #[test]
    fn base64_round_trip(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let encoded = lbe::spectra::base64::encode(&data);
        prop_assert_eq!(lbe::spectra::base64::decode(&encoded).unwrap(), data);
    }

    #[test]
    fn mgf_round_trip(
        spectra in prop::collection::vec(
            (1u32..100_000, 100.0f64..2000.0, 1u8..5,
             prop::collection::vec((50.0f64..3000.0, 0.1f32..1e5), 0..20)),
            0..5,
        )
    ) {
        let spectra: Vec<Spectrum> = spectra
            .into_iter()
            .map(|(scan, pmz, z, peaks)| {
                Spectrum::new(scan, pmz, z, peaks.into_iter().map(|(m, i)| Peak::new(m, i)).collect())
            })
            .collect();
        let mut buf = Vec::new();
        write_mgf(&mut buf, &spectra).unwrap();
        let back = read_mgf(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), spectra.len());
        for (a, b) in back.iter().zip(&spectra) {
            prop_assert_eq!(a.scan, b.scan);
            prop_assert_eq!(a.charge, b.charge);
            prop_assert_eq!(a.peak_count(), b.peak_count());
        }
    }
}

proptest! {
    // Heavier cases: fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn searcher_counts_match_brute_force(
        seqs in prop::collection::vec(peptide_seq(14), 2..10),
        peaks in prop::collection::vec((100.0f64..1500.0, 1.0f32..100.0), 1..40),
        pmz in 200.0f64..1200.0,
    ) {
        let db = PeptideDb::from_vec(
            seqs.iter().map(|s| Peptide::new(s, 0, 0).unwrap()).collect(),
        );
        let cfg = SlmConfig {
            shared_peak_threshold: 1,
            top_k: usize::MAX,
            ..SlmConfig::default()
        };
        let idx = IndexBuilder::new(cfg.clone(), ModSpec::none()).build(&db);
        let q = Spectrum::new(0, pmz, 2, peaks.iter().map(|&(m, i)| Peak::new(m, i)).collect());
        let mut searcher = Searcher::new(&idx);
        let r = searcher.search(&q);
        // The index may hold duplicate sequences (proptest can generate
        // them); compare per entry, aggregating by peptide id only when
        // sequences are unique.
        let mut unique = seqs.clone();
        unique.sort();
        unique.dedup();
        prop_assume!(unique.len() == seqs.len());
        for (pid, pep) in db.iter() {
            let theo = TheoSpectrum::from_sequence(
                pep.sequence(),
                &lbe::bio::mods::ModForm::unmodified(),
                &ModSpec::none(),
                &cfg.theo,
            );
            let expect = brute_force_shared_peaks(&cfg, &q, &theo);
            let got = r.psms.iter().find(|p| p.peptide == pid).map(|p| p.shared_peaks).unwrap_or(0);
            prop_assert_eq!(got, expect, "peptide {}", pid);
        }
    }

    #[test]
    fn index_validates_for_random_databases(
        seqs in prop::collection::vec(peptide_seq(20), 0..30),
        use_mods in any::<bool>(),
    ) {
        let db = PeptideDb::from_vec(
            seqs.iter().map(|s| Peptide::new(s, 0, 0).unwrap()).collect(),
        );
        let spec = if use_mods { ModSpec::paper_default() } else { ModSpec::none() };
        let mut builder = IndexBuilder::new(SlmConfig::default(), spec);
        let idx = builder.build(&db);
        prop_assert!(idx.validate().is_ok());
        prop_assert_eq!(builder.stats().ions, idx.num_ions());
    }
}
