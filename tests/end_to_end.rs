//! Cross-crate integration tests: the full pipeline, result invariance
//! across policies and rank counts, and agreement between execution modes.

use lbe::bio::mods::ModSpec;
use lbe::core::engine::{run_distributed_search, EngineConfig};
use lbe::core::grouping::{group_peptides, GroupingParams};
use lbe::core::partition::PartitionPolicy;
use lbe::core::pipeline::PipelineBuilder;
use lbe::index::{ChunkedIndex, IndexBuilder, Searcher, SlmConfig};
use lbe::spectra::preprocess::{preprocess_spectrum, PreprocessParams};
use lbe::spectra::synthetic::{SyntheticDataset, SyntheticDatasetParams};

fn demo() -> lbe::core::pipeline::PipelineReport {
    PipelineBuilder::small_demo().run(123)
}

#[test]
fn pipeline_identifies_most_queries() {
    let report = demo();
    assert!(
        report.top1_accuracy() >= 0.85,
        "top-1 accuracy {:.2} below 0.85",
        report.top1_accuracy()
    );
}

#[test]
fn results_invariant_across_policies_and_ranks() {
    // The partitioning changes WHERE work happens, never WHAT is found:
    // candidate sets (by peptide and shared-peak count) must be identical.
    // Disable top-k truncation: with ties at the k-boundary, per-rank
    // truncation legitimately keeps different equal-scored candidates.
    let mut base = PipelineBuilder::small_demo();
    base.engine.slm.top_k = usize::MAX;
    let reference = base
        .clone()
        .with_policy(PartitionPolicy::Cyclic)
        .with_ranks(1)
        .run(7);
    for policy in [
        PartitionPolicy::Chunk,
        PartitionPolicy::Cyclic,
        PartitionPolicy::Random { seed: 99 },
        PartitionPolicy::RandomWithinGroups { seed: 4 },
    ] {
        for ranks in [2usize, 5, 8] {
            let run = base.clone().with_policy(policy).with_ranks(ranks).run(7);
            assert_eq!(
                run.search.total_candidates, reference.search.total_candidates,
                "{policy} at {ranks} ranks changed the candidate count"
            );
            for (qi, (a, b)) in reference
                .search
                .psms
                .iter()
                .zip(&run.search.psms)
                .enumerate()
            {
                let mut pa: Vec<(u32, u16)> =
                    a.iter().map(|p| (p.peptide, p.shared_peaks)).collect();
                let mut pb: Vec<(u32, u16)> =
                    b.iter().map(|p| (p.peptide, p.shared_peaks)).collect();
                pa.sort_unstable();
                pb.sort_unstable();
                assert_eq!(pa, pb, "{policy} at {ranks} ranks, query {qi}");
            }
        }
    }
}

#[test]
fn distributed_engine_agrees_with_local_searcher() {
    // A 1-rank distributed run must reproduce a plain local search exactly.
    let report = demo();
    let db = &report.db;
    let cfg = SlmConfig::default();
    let index = IndexBuilder::new(cfg, ModSpec::none()).build(db);
    let mut searcher = Searcher::new(&index);

    let dataset = SyntheticDataset::generate(
        db,
        &ModSpec::none(),
        &SyntheticDatasetParams {
            num_spectra: 15,
            ..Default::default()
        },
        555,
    );
    let pre = PreprocessParams::default();
    let queries: Vec<_> = dataset
        .spectra
        .iter()
        .map(|s| preprocess_spectrum(s, &pre))
        .collect();

    let grouping = group_peptides(db, &GroupingParams::default());
    let engine_cfg = EngineConfig::with_policy(PartitionPolicy::Cyclic);
    let dist = run_distributed_search(db, &grouping, &queries, &engine_cfg, 1);

    for (qi, q) in queries.iter().enumerate() {
        let local = searcher.search(q);
        let mut la: Vec<(u32, u16)> = local
            .psms
            .iter()
            .map(|p| (p.peptide, p.shared_peaks))
            .collect();
        // 1-rank cyclic partition preserves grouped order, not db order, so
        // compare as sets of (peptide, shared).
        let mut da: Vec<(u32, u16)> = dist.psms[qi]
            .iter()
            .map(|p| (p.peptide, p.shared_peaks))
            .collect();
        la.sort_unstable();
        da.sort_unstable();
        assert_eq!(la, da, "query {qi}");
    }
}

#[test]
fn chunked_index_agrees_with_distributed_candidates() {
    // Fig. 1's shared-memory chunking and Fig. 3's cross-machine
    // partitioning are different layouts of the same search.
    let report = demo();
    let db = &report.db;
    let dataset = SyntheticDataset::generate(
        db,
        &ModSpec::none(),
        &SyntheticDatasetParams {
            num_spectra: 10,
            ..Default::default()
        },
        777,
    );
    let pre = PreprocessParams::default();
    let queries: Vec<_> = dataset
        .spectra
        .iter()
        .map(|s| preprocess_spectrum(s, &pre))
        .collect();

    let chunked = ChunkedIndex::build(db, SlmConfig::default(), ModSpec::none(), 100);
    let grouping = group_peptides(db, &GroupingParams::default());
    let cfg = EngineConfig::with_policy(PartitionPolicy::Chunk);
    let dist = run_distributed_search(db, &grouping, &queries, &cfg, 4);

    for (qi, q) in queries.iter().enumerate() {
        let c = chunked.search(q);
        let mut ca: Vec<(u32, u16)> = c.psms.iter().map(|p| (p.peptide, p.shared_peaks)).collect();
        let mut da: Vec<(u32, u16)> = dist.psms[qi]
            .iter()
            .map(|p| (p.peptide, p.shared_peaks))
            .collect();
        ca.sort_unstable();
        da.sort_unstable();
        assert_eq!(ca, da, "query {qi}");
    }
}

#[test]
fn virtual_times_deterministic_across_repeats() {
    let a = demo();
    let b = demo();
    assert_eq!(a.search.rank_query_times, b.search.rank_query_times);
    assert_eq!(a.search.total_times, b.search.total_times);
    assert_eq!(a.search.build_times, b.search.build_times);
}

#[test]
fn imbalance_metrics_consistent_with_times() {
    let report = demo();
    let times = &report.search.rank_query_times;
    let s = &report.search.imbalance;
    let avg = times.iter().sum::<f64>() / times.len() as f64;
    let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!((s.t_avg - avg).abs() < 1e-12);
    assert!((s.t_max - max).abs() < 1e-12);
    assert!((s.delta_t_max - (max - avg)).abs() < 1e-12);
}

#[test]
fn modified_index_still_invariant_across_ranks() {
    // With PTMs enabled (multiple modforms per peptide), candidates must
    // still be partition-invariant.
    let mut builder = PipelineBuilder::small_demo();
    builder.engine.modspec = ModSpec::oxidation_only();
    builder.dataset.modified_fraction = 0.5;
    let r2 = builder.clone().with_ranks(2).run(31);
    let r6 = builder.clone().with_ranks(6).run(31);
    assert_eq!(r2.search.total_candidates, r6.search.total_candidates);
    assert_eq!(r2.top1_correct, r6.top1_correct);
}

#[test]
fn footprint_overhead_master_only() {
    let report = demo();
    let f = &report.search.footprints;
    assert!(f[0].mapping_table > 0, "master carries the mapping table");
    assert!(f[1..].iter().all(|x| x.mapping_table == 0));
    let total: usize = f.iter().map(|x| x.total()).sum();
    assert!(total > 0);
    assert!(report.search.mapping_table_bytes > 0);
}

#[test]
fn disk_backed_index_is_transparent_end_to_end() {
    // The full pipeline's database, written as a v2 chunked container and
    // searched disk-backed with a one-chunk residency budget, must produce
    // the same results as the in-memory chunked index — across the facade
    // crate, the storage layer, and the residency layer.
    let report = demo();
    let db = &report.db;
    let dataset = SyntheticDataset::generate(
        db,
        &ModSpec::none(),
        &SyntheticDatasetParams {
            num_spectra: 12,
            ..Default::default()
        },
        991,
    );
    let pre = PreprocessParams::default();
    let queries: Vec<_> = dataset
        .spectra
        .iter()
        .map(|s| preprocess_spectrum(s, &pre))
        .collect();

    let chunked = ChunkedIndex::build(db, SlmConfig::default(), ModSpec::none(), 40);
    assert!(chunked.num_chunks() > 1, "fixture must exercise chunking");
    let dir = std::env::temp_dir().join("lbe_e2e_disk_backed");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.lbe");
    chunked.write_path(&path).unwrap();

    let in_memory = chunked.search_batch(&queries);

    // Eagerly reopened (single shared arena) and lazily opened with the
    // tightest budget: both must be bit-identical to the built index.
    let reopened = lbe::index::ChunkedIndex::open_path(&path).unwrap();
    assert_eq!(reopened.search_batch(&queries), in_memory);

    let mut store = lbe::index::ChunkStore::open_path(&path, 1).unwrap();
    let disk_backed = store.search_batch(&queries).unwrap();
    assert_eq!(disk_backed, in_memory);
    assert!(store.num_resident() <= 1);
    assert!(store.stats().faults > 0);

    std::fs::remove_file(&path).ok();
}
