//! Integration tests of the cluster substrate under realistic usage: mixed
//! point-to-point and collective traffic, virtual-time reasoning, and the
//! engine's communication pattern in isolation.

use lbe::cluster::{Cluster, ClusterConfig, CommCostModel};

#[test]
fn master_worker_result_return_pattern() {
    // The engine's shape: workers compute unequal work, send results to the
    // master, master merges.
    let out = Cluster::new(ClusterConfig::new(6)).run(|comm| {
        let me = comm.rank();
        let work = (me as f64 + 1.0) * 0.1;
        comm.compute(work);
        let local_result = vec![me * 10, me * 10 + 1];
        let gathered = comm.gather(0, local_result, 16);
        match gathered {
            Some(all) => all.into_iter().flatten().sum::<usize>(),
            None => 0,
        }
    });
    // Sum of {0,1,10,11,...,50,51}
    let expect: usize = (0..6).map(|m| m * 10 + m * 10 + 1).sum();
    assert_eq!(out.results[0], expect);
    assert!(out.results[1..].iter().all(|&r| r == 0));
    // Master finished no earlier than the slowest worker's send.
    assert!(out.times[0] >= 0.6);
}

#[test]
fn virtual_makespan_tracks_critical_path() {
    let cfg = ClusterConfig::new(4).with_cost(CommCostModel {
        latency_s: 0.01,
        per_byte_s: 0.0,
    });
    let out = Cluster::new(cfg).run(|comm| {
        comm.compute(if comm.rank() == 2 { 5.0 } else { 1.0 });
        comm.barrier();
        comm.now()
    });
    // Everyone waits for rank 2 (plus two message hops through the barrier).
    for t in &out.results {
        assert!(*t >= 5.0 && *t <= 5.1, "{t}");
    }
}

#[test]
fn pipelined_rounds_accumulate_time() {
    let cfg = ClusterConfig::new(3).with_cost(CommCostModel::free());
    let rounds = 5;
    let out = Cluster::new(cfg).run(|comm| {
        for _ in 0..rounds {
            comm.compute(1.0);
            comm.barrier();
        }
        comm.now()
    });
    for t in &out.results {
        assert!((*t - rounds as f64).abs() < 1e-9);
    }
}

#[test]
fn ring_communication() {
    // Each rank sends to its right neighbour and receives from its left —
    // exercises matched sends with distinct sources.
    let p = 5;
    let out = Cluster::new(ClusterConfig::new(p)).run(|comm| {
        let me = comm.rank();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        comm.send(right, 1, me, 8);
        comm.recv::<usize>(left, 1)
    });
    for (me, &got) in out.results.iter().enumerate() {
        assert_eq!(got, (me + p - 1) % p);
    }
}

#[test]
fn reduction_tree_of_vectors() {
    let out = Cluster::new(ClusterConfig::new(4)).run(|comm| {
        let local = vec![comm.rank() as u64; 3];
        comm.all_reduce(
            local,
            |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect(),
            24,
        )
    });
    assert!(out.results.iter().all(|r| r == &vec![6u64, 6, 6]));
}

#[test]
fn repeated_runs_on_same_cluster_are_independent() {
    let cluster = Cluster::new(ClusterConfig::new(3));
    let a = cluster.run(|c| {
        c.compute(1.0);
        c.now()
    });
    let b = cluster.run(|c| c.now());
    assert!(a.results.iter().all(|&t| t == 1.0));
    assert!(
        b.results.iter().all(|&t| t == 0.0),
        "clocks must reset per run"
    );
}

#[test]
fn large_rank_counts() {
    let out =
        Cluster::new(ClusterConfig::new(32)).run(|comm| comm.all_reduce(1u64, |a, b| a + b, 8));
    assert!(out.results.iter().all(|&r| r == 32));
}

#[test]
fn imbalance_summary_of_cluster_times() {
    use lbe::cluster::sim::ImbalanceSummary;
    let out = Cluster::new(ClusterConfig::new(8)).run(|comm| {
        comm.compute(if comm.rank() == 7 { 2.0 } else { 1.0 });
    });
    let s = ImbalanceSummary::from_times(&out.times);
    assert!(s.load_imbalance > 0.0);
    assert_eq!(s.t_max, 2.0);
    assert!((s.t_avg - 9.0 / 8.0).abs() < 1e-12);
}
