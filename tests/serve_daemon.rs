//! `lbe serve` end-to-end: concurrent clients against one daemon must
//! reproduce the one-shot CLI golden reports byte for byte, responses
//! must match their request ids under interleaving, and the lifecycle
//! must be clean — bad indexes never half-start a server, shutdown
//! drains in-flight queries, and one client's disconnect cannot poison
//! another's session.

use lbe::cli::args::Args;
use lbe::cli::commands::dispatch;
use lbe::core::serve::proto::{self, Request, Response};
use lbe::core::serve::{serve_stdin, ResidentEngine, ServeConfig, Server, ShutdownHandle};
use lbe::index::{QueryOptions, ScanMode};
use lbe::spectra::reader::SpectrumReader;
use lbe::spectra::spectrum::Spectrum;
use std::io::{BufReader, Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

fn data(name: &str) -> String {
    format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join("lbe_serve_daemon").join(name);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn cli(cmdline: &str) -> String {
    let args = Args::parse(cmdline.split_whitespace().map(String::from)).unwrap();
    let mut out = Vec::new();
    dispatch(&args, &mut out).unwrap_or_else(|e| panic!("{cmdline}: {e}"));
    String::from_utf8(out).unwrap()
}

/// Builds the corpus index once for the whole suite (digest → index over
/// the checked-in `tests/data/` corpus, exactly like the golden CLI
/// pipeline).
fn corpus_index() -> &'static str {
    static INDEX: OnceLock<String> = OnceLock::new();
    INDEX.get_or_init(|| {
        let d = tmpdir("fixture");
        let pep = d.join("pep.fasta").to_string_lossy().to_string();
        let idx = d.join("corpus.lbe").to_string_lossy().to_string();
        cli(&format!("digest --in {} --out {pep}", data("corpus.fasta")));
        cli(&format!("index --db {pep} --out {idx}"));
        idx
    })
}

/// Starts an in-process daemon over the corpus index; returns the bound
/// address, a shutdown handle, and the join handle for `run()`.
fn start_daemon(
    cfg: ServeConfig,
) -> (
    std::net::SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<lbe::core::ServeStats>,
) {
    let engine = ResidentEngine::open(corpus_index(), usize::MAX).unwrap();
    let server = Server::bind(engine, "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, runner)
}

/// Encodes one wire query from a raw (unpreprocessed) spectrum.
fn query_frame(req_id: u64, s: &Spectrum) -> Vec<u8> {
    let mut wire = Vec::new();
    proto::write_frame(
        &mut wire,
        &Request::Query {
            req_id,
            full_scan: false,
            tolerance: None,
            top_k: None,
            scan: s.scan,
            precursor_mz: s.precursor_mz,
            charge: s.charge,
            peaks: s.peaks.iter().map(|p| (p.mz, p.intensity)).collect(),
        }
        .encode(),
    )
    .unwrap();
    wire
}

fn read_response(rd: &mut impl Read) -> Response {
    let payload = proto::read_frame(rd).unwrap().expect("connection open");
    Response::decode(&payload).unwrap()
}

/// Tentpole acceptance: ≥ 4 concurrent CLI clients, covering all three
/// query formats, each get a report byte-identical to the committed
/// one-shot CLI goldens from a single running daemon.
#[test]
fn concurrent_clients_match_cli_goldens() {
    let (addr, handle, runner) = start_daemon(ServeConfig::default());
    let d = tmpdir("concurrent");
    let clients: Vec<(&str, &str, &str)> = vec![
        ("a", "corpus.ms2", "expected_search_text.tsv"),
        ("b", "corpus.mgf", "expected_search_text.tsv"),
        ("c", "corpus.mzML", "expected_search_mzml.tsv"),
        ("d", "corpus.ms2", "expected_search_text.tsv"),
        ("e", "corpus.mgf", "expected_search_text.tsv"),
    ];
    let threads: Vec<_> = clients
        .into_iter()
        .map(|(tag, queries, expected)| {
            let out = d.join(format!("{tag}.tsv")).to_string_lossy().to_string();
            std::thread::spawn(move || {
                cli(&format!(
                    "query --addr {addr} --queries {} --out {out}",
                    data(queries)
                ));
                let got = std::fs::read_to_string(&out).unwrap();
                let want = std::fs::read_to_string(data(expected)).unwrap();
                assert_eq!(
                    got, want,
                    "client {tag} ({queries}) diverged from {expected}"
                );
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
    let stats = runner.join().unwrap();
    assert_eq!(stats.connections, 5);
    assert_eq!(stats.requests, 5 * 24);
    assert_eq!(stats.responses, 5 * 24);
    assert_eq!(stats.protocol_errors, 0);
}

/// Interleaving: one connection sends the whole corpus in *reverse* with
/// shuffled request ids; every response must carry the result belonging
/// to its id (pinned against the engine's own sequential answers).
#[test]
fn responses_match_request_ids_under_interleaving() {
    let (addr, handle, runner) = start_daemon(ServeConfig::default());
    let spectra: Vec<Spectrum> = SpectrumReader::open(data("corpus.ms2"))
        .unwrap()
        .map(|s| s.unwrap())
        .collect();

    // Expected answers, computed sequentially through the same engine API
    // the daemon uses.
    let engine = ResidentEngine::open(corpus_index(), usize::MAX).unwrap();
    let opts = QueryOptions::default();
    let expected: Vec<Vec<(u32, u16, u16, f32)>> = spectra
        .iter()
        .map(|s| {
            engine
                .search_one(&engine.preprocess(s), &opts)
                .unwrap()
                .psms
                .iter()
                .map(|p| (p.peptide, p.modform, p.shared_peaks, p.score))
                .collect()
        })
        .collect();

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut rd = BufReader::new(stream.try_clone().unwrap());
    // Reverse order, ids offset by 9000: id 9000+i still means spectrum i.
    for (i, s) in spectra.iter().enumerate().rev() {
        stream.write_all(&query_frame(9000 + i as u64, s)).unwrap();
    }
    let mut seen = vec![false; spectra.len()];
    for _ in 0..spectra.len() {
        match read_response(&mut rd) {
            Response::Result { req_id, psms, .. } => {
                let i = (req_id - 9000) as usize;
                assert!(!seen[i], "duplicate response for id {req_id}");
                seen[i] = true;
                assert_eq!(psms, expected[i], "wrong payload for request id {req_id}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(seen.iter().all(|&s| s));
    drop(stream);
    handle.shutdown();
    runner.join().unwrap();
}

/// The stdin transport answers the same frames sequentially: ping →
/// queries (with per-request overrides) → shutdown, over an in-memory
/// stream, with results identical to the TCP/dispatcher path.
#[test]
fn stdin_transport_equivalent_and_honours_overrides() {
    let engine = ResidentEngine::open(corpus_index(), usize::MAX).unwrap();
    let spectra: Vec<Spectrum> = SpectrumReader::open(data("corpus.ms2"))
        .unwrap()
        .map(|s| s.unwrap())
        .collect();
    let s = &spectra[0];

    let mut input = Vec::new();
    proto::write_frame(&mut input, &Request::Ping { req_id: 1 }.encode()).unwrap();
    // Default, full-scan, top-k 2, and tolerance 1.0 Da variants of the
    // same spectrum, plus a bad tolerance that must error cleanly.
    let variants: Vec<(u64, bool, Option<f64>, Option<u32>)> = vec![
        (10, false, None, None),
        (11, true, None, None),
        (12, false, None, Some(2)),
        (13, false, Some(1.0), None),
        (14, false, Some(-3.0), None),
    ];
    for &(req_id, full_scan, tolerance, top_k) in &variants {
        proto::write_frame(
            &mut input,
            &Request::Query {
                req_id,
                full_scan,
                tolerance,
                top_k,
                scan: s.scan,
                precursor_mz: s.precursor_mz,
                charge: s.charge,
                peaks: s.peaks.iter().map(|p| (p.mz, p.intensity)).collect(),
            }
            .encode(),
        )
        .unwrap();
    }
    proto::write_frame(&mut input, &Request::Shutdown { req_id: 99 }.encode()).unwrap();

    let mut output = Vec::new();
    let stats = serve_stdin(&engine, &mut Cursor::new(input), &mut output).unwrap();
    assert_eq!(stats.requests, 7);
    assert_eq!(stats.responses, 7);
    assert_eq!(stats.protocol_errors, 0);

    let mut rd = Cursor::new(output);
    match read_response(&mut rd) {
        Response::Pong {
            req_id,
            protocol_version,
            num_chunks,
        } => {
            assert_eq!(req_id, 1);
            assert_eq!(protocol_version, proto::PROTOCOL_VERSION);
            assert_eq!(num_chunks, engine.num_chunks() as u32);
        }
        other => panic!("expected pong, got {other:?}"),
    }
    let baseline = engine
        .search_one(&engine.preprocess(s), &QueryOptions::default())
        .unwrap()
        .psms;
    let expect_psms = |r: Response, want_id: u64| match r {
        Response::Result { req_id, psms, .. } => {
            assert_eq!(req_id, want_id);
            psms
        }
        other => panic!("expected result for {want_id}, got {other:?}"),
    };
    let default_psms = expect_psms(read_response(&mut rd), 10);
    assert_eq!(default_psms.len(), baseline.len());
    // Full scan finds the identical PSMs.
    assert_eq!(expect_psms(read_response(&mut rd), 11), default_psms);
    // top-k 2 is a strict truncation of the default ranking.
    assert_eq!(expect_psms(read_response(&mut rd), 12), default_psms[..2]);
    // A 1 Da closed window matches the engine under the same override.
    let narrowed = engine
        .search_one(
            &engine.preprocess(s),
            &QueryOptions {
                scan_mode: ScanMode::Auto,
                top_k: None,
                precursor_tolerance: Some(1.0),
            },
        )
        .unwrap()
        .psms;
    let got = expect_psms(read_response(&mut rd), 13);
    assert_eq!(
        got,
        narrowed
            .iter()
            .map(|p| (p.peptide, p.modform, p.shared_peaks, p.score))
            .collect::<Vec<_>>()
    );
    match read_response(&mut rd) {
        Response::Error { req_id, code, .. } => {
            assert_eq!(req_id, 14);
            assert_eq!(code, proto::CODE_BAD_REQUEST);
        }
        other => panic!("expected bad-request error, got {other:?}"),
    }
    match read_response(&mut rd) {
        Response::Bye { req_id } => assert_eq!(req_id, 99),
        other => panic!("expected bye, got {other:?}"),
    }
}

/// EOF on the input stream (no shutdown frame) ends a stdin session
/// cleanly, answering everything that arrived.
#[test]
fn stdin_eof_is_clean_shutdown() {
    let engine = ResidentEngine::open(corpus_index(), usize::MAX).unwrap();
    let mut input = Vec::new();
    proto::write_frame(&mut input, &Request::Ping { req_id: 5 }.encode()).unwrap();
    let mut output = Vec::new();
    let stats = serve_stdin(&engine, &mut Cursor::new(input), &mut output).unwrap();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.responses, 1);
    assert!(matches!(
        read_response(&mut Cursor::new(output)),
        Response::Pong { req_id: 5, .. }
    ));
}

/// A malformed frame on the stdin transport is answered with an error
/// frame, then the session ends (framing is lost).
#[test]
fn stdin_malformed_frame_errors_cleanly() {
    let engine = ResidentEngine::open(corpus_index(), usize::MAX).unwrap();
    let mut input = Vec::new();
    proto::write_frame(&mut input, &[0x55, 1, 2, 3]).unwrap(); // unknown kind
    proto::write_frame(&mut input, &Request::Ping { req_id: 6 }.encode()).unwrap();
    let mut output = Vec::new();
    let stats = serve_stdin(&engine, &mut Cursor::new(input), &mut output).unwrap();
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.requests, 0, "session ends at the poisoned frame");
    match read_response(&mut Cursor::new(output)) {
        Response::Error { code, .. } => assert_eq!(code, proto::CODE_UNSUPPORTED),
        other => panic!("expected error frame, got {other:?}"),
    }
}

/// Lifecycle: a missing, truncated, or corrupt index path is an ordinary
/// error from `open` — a server can never half-start on one, because
/// binding happens only after the engine validated.
#[test]
fn bad_index_paths_are_clean_errors() {
    assert!(ResidentEngine::open("/nonexistent/index.lbe", usize::MAX).is_err());

    let d = tmpdir("bad_index");
    // Garbage magic.
    let garbage = d.join("garbage.lbe");
    std::fs::write(&garbage, b"NOTANIDX________").unwrap();
    assert!(ResidentEngine::open(&garbage, usize::MAX).is_err());

    // A real container truncated in half fails validation.
    let whole = std::fs::read(corpus_index()).unwrap();
    let truncated = d.join("truncated.lbe");
    std::fs::write(&truncated, &whole[..whole.len() / 2]).unwrap();
    assert!(ResidentEngine::open(&truncated, usize::MAX).is_err());

    // The CLI surfaces the same failure without ever printing a banner.
    let args = Args::parse(
        format!("serve --index {}", truncated.display())
            .split_whitespace()
            .map(String::from),
    )
    .unwrap();
    let mut out = Vec::new();
    assert!(dispatch(&args, &mut out).is_err());
    assert!(out.is_empty(), "no listening banner before the failure");
}

/// Lifecycle: a shutdown frame arriving behind five pipelined queries is
/// acknowledged only after every query was answered — Bye is the final
/// frame on the wire.
#[test]
fn graceful_shutdown_drains_inflight_queries() {
    let (addr, _handle, runner) = start_daemon(ServeConfig::default());
    let spectra: Vec<Spectrum> = SpectrumReader::open(data("corpus.ms2"))
        .unwrap()
        .map(|s| s.unwrap())
        .collect();

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut rd = BufReader::new(stream.try_clone().unwrap());
    let mut batch = Vec::new();
    for (i, s) in spectra.iter().take(5).enumerate() {
        batch.extend_from_slice(&query_frame(100 + i as u64, s));
    }
    proto::write_frame(&mut batch, &Request::Shutdown { req_id: 777 }.encode()).unwrap();
    stream.write_all(&batch).unwrap();

    let mut result_ids = Vec::new();
    loop {
        match read_response(&mut rd) {
            Response::Result { req_id, .. } => result_ids.push(req_id),
            Response::Bye { req_id } => {
                assert_eq!(req_id, 777);
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    result_ids.sort_unstable();
    assert_eq!(result_ids, vec![100, 101, 102, 103, 104]);
    // And the frame after Bye is a clean EOF: the server sent nothing
    // more and run() has wound down.
    assert!(proto::read_frame(&mut rd).unwrap().is_none());
    let stats = runner.join().unwrap();
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.responses, 6);
}

/// Lifecycle: one client disconnecting with queries still in flight must
/// not poison other connections — a second client's full run still
/// matches the golden report.
#[test]
fn client_disconnect_mid_batch_does_not_poison_others() {
    let (addr, handle, runner) = start_daemon(ServeConfig::default());
    let spectra: Vec<Spectrum> = SpectrumReader::open(data("corpus.ms2"))
        .unwrap()
        .map(|s| s.unwrap())
        .collect();

    // Client A: pipeline queries, then vanish without reading a byte.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        for (i, s) in spectra.iter().take(8).enumerate() {
            stream.write_all(&query_frame(i as u64, s)).unwrap();
        }
        // dropped here: mid-batch disconnect
    }

    // Client B: the full corpus through the real CLI client must still
    // be byte-identical to the golden.
    let d = tmpdir("disconnect");
    let out = d.join("b.tsv").to_string_lossy().to_string();
    cli(&format!(
        "query --addr {addr} --queries {} --out {out}",
        data("corpus.ms2")
    ));
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        std::fs::read_to_string(data("expected_search_text.tsv")).unwrap()
    );

    handle.shutdown();
    let stats = runner.join().unwrap();
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.protocol_errors, 0);
}

/// A protocol error on one connection closes that connection (after an
/// error frame) without touching the server or other clients.
#[test]
fn malformed_frame_closes_only_its_connection() {
    let (addr, handle, runner) = start_daemon(ServeConfig::default());

    let mut bad = TcpStream::connect(addr).unwrap();
    let mut bad_rd = BufReader::new(bad.try_clone().unwrap());
    // Oversized declared length: rejected before any payload is read.
    bad.write_all(&(proto::MAX_FRAME_LEN + 1).to_le_bytes())
        .unwrap();
    match read_response(&mut bad_rd) {
        Response::Error { code, .. } => assert_eq!(code, proto::CODE_OVERSIZED),
        other => panic!("expected oversized error, got {other:?}"),
    }
    // The server hangs up on us afterwards...
    assert!(proto::read_frame(&mut bad_rd).unwrap().is_none());

    // ...but a healthy client is unaffected.
    let mut good = TcpStream::connect(addr).unwrap();
    let mut good_rd = BufReader::new(good.try_clone().unwrap());
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, &Request::Ping { req_id: 8 }.encode()).unwrap();
    good.write_all(&wire).unwrap();
    assert!(matches!(
        read_response(&mut good_rd),
        Response::Pong { req_id: 8, .. }
    ));

    handle.shutdown();
    let stats = runner.join().unwrap();
    assert_eq!(stats.protocol_errors, 1);
}

/// The CLI `serve` command itself: banner, golden equivalence through the
/// CLI client, `--shutdown`, and the final summary line.
#[test]
fn serve_cli_command_roundtrip() {
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf::default();
    let server_buf = buf.clone();
    let index = corpus_index().to_string();
    let server = std::thread::spawn(move || {
        let args = Args::parse(
            format!("serve --index {index} --addr 127.0.0.1:0 --threads 2")
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let mut out = server_buf;
        dispatch(&args, &mut out).unwrap();
    });

    // Scrape the parseable banner for the bound address.
    let addr = loop {
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
            break line.trim_start_matches("listening on ").to_string();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };

    let d = tmpdir("cli_serve");
    let out = d.join("r.tsv").to_string_lossy().to_string();
    let msg = cli(&format!(
        "query --addr {addr} --queries {} --out {out}",
        data("corpus.ms2")
    ));
    assert!(msg.contains("queried 24 spectra"), "{msg}");
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        std::fs::read_to_string(data("expected_search_text.tsv")).unwrap()
    );
    let msg = cli(&format!("query --addr {addr} --shutdown"));
    assert!(msg.contains("acknowledged shutdown"), "{msg}");
    server.join().unwrap();
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert!(text.contains("served 2 connections"), "{text}");
}

/// `query --csv` and `--top-k` produce byte-identical reports to the
/// one-shot `search` under the same flags, over the same daemon.
#[test]
fn query_flags_match_one_shot_search() {
    let (addr, handle, runner) = start_daemon(ServeConfig::default());
    let d = tmpdir("flags");
    let p = |n: &str| d.join(n).to_string_lossy().to_string();
    for flags in ["--csv", "--top-k 3", "--top-k 1 --csv", "--full-scan"] {
        cli(&format!(
            "search --index {} --queries {} --out {} {flags}",
            corpus_index(),
            data("corpus.ms2"),
            p("one_shot.tsv")
        ));
        cli(&format!(
            "query --addr {addr} --queries {} --out {} {flags}",
            data("corpus.ms2"),
            p("served.tsv")
        ));
        assert_eq!(
            std::fs::read_to_string(p("served.tsv")).unwrap(),
            std::fs::read_to_string(p("one_shot.tsv")).unwrap(),
            "flags {flags:?} diverged"
        );
    }
    handle.shutdown();
    runner.join().unwrap();
}

/// A daemon serving a generation store picks up appended generations
/// between waves: the same connection that searched the base index finds
/// the appended peptide after `append`, with no reconnect.
#[test]
fn serve_reopens_latest_generation_without_dropping_connections() {
    use lbe::bio::mods::ModSpec;
    use lbe::bio::peptide::{Peptide, PeptideDb};
    use lbe::index::{GenerationStore, SlmConfig};
    use lbe::spectra::spectrum::Peak;
    use lbe::spectra::theo::{TheoParams, TheoSpectrum};

    fn perfect_query(seq: &[u8]) -> Spectrum {
        let theo = TheoSpectrum::from_sequence(
            seq,
            &lbe::bio::mods::ModForm::unmodified(),
            &ModSpec::none(),
            &TheoParams::default(),
        );
        let peaks = theo
            .fragment_mzs
            .iter()
            .map(|&m| Peak::new(m, 100.0))
            .collect();
        Spectrum::new(
            7,
            lbe::bio::aa::precursor_mz(theo.precursor_mass, 2),
            2,
            peaks,
        )
    }
    fn pep_db(seqs: &[&str]) -> PeptideDb {
        PeptideDb::from_vec(
            seqs.iter()
                .map(|s| Peptide::new(s.as_bytes(), 0, 0).unwrap())
                .collect(),
        )
    }

    let dir = tmpdir("gen_reopen").join("store");
    std::fs::remove_dir_all(&dir).ok();
    let (writer, _) = GenerationStore::init(
        &dir,
        &pep_db(&["GGGGGK", "AAAGGK", "PEPTIDEK", "ELVISLIVESK"]),
        SlmConfig::default(),
        ModSpec::none(),
        2,
    )
    .unwrap();

    let engine = ResidentEngine::open(&dir, usize::MAX).unwrap();
    let server = Server::bind(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().unwrap());

    let mut conn = TcpStream::connect(addr).unwrap();
    let top_peptide = |conn: &mut TcpStream, seq: &[u8], req_id: u64| -> u32 {
        conn.write_all(&query_frame(req_id, &perfect_query(seq)))
            .unwrap();
        match read_response(&mut BufReader::new(conn.try_clone().unwrap())) {
            Response::Result {
                req_id: rid, psms, ..
            } => {
                assert_eq!(rid, req_id);
                assert!(!psms.is_empty(), "no PSMs for {:?}", seq);
                psms[0].0
            }
            other => panic!("unexpected response: {other:?}"),
        }
    };

    // Base generation answers on this connection…
    assert_eq!(top_peptide(&mut conn, b"PEPTIDEK", 1), 2);
    // …a writer appends a new generation behind the daemon's back…
    let out = writer.append(&pep_db(&["WWWWWWK", "SAMPLERK"])).unwrap();
    assert_eq!(out.peptides_added, 2);
    // …and the SAME connection finds the appended peptide: the dispatcher
    // refreshed to the new generation between waves.
    assert_eq!(top_peptide(&mut conn, b"WWWWWWK", 2), 4);
    // The base generation still answers too (its chunks carried over).
    assert_eq!(top_peptide(&mut conn, b"GGGGGK", 3), 0);

    drop(conn);
    handle.shutdown();
    runner.join().unwrap();
}

/// Degraded mode: a zero wave deadline means no query is ever *started*
/// in time, so every response is an empty, DEGRADED-flagged partial
/// result (wire kind 0x84), counted in the server stats — and the
/// connection stays healthy throughout.
#[test]
fn zero_wave_deadline_degrades_every_query() {
    let cfg = ServeConfig {
        wave_deadline: Some(std::time::Duration::ZERO),
        ..ServeConfig::default()
    };
    let (addr, handle, runner) = start_daemon(cfg);
    let spectra: Vec<Spectrum> = SpectrumReader::open(data("corpus.ms2"))
        .unwrap()
        .map(|s| s.unwrap())
        .collect();

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut rd = BufReader::new(stream.try_clone().unwrap());
    for (i, s) in spectra.iter().enumerate() {
        stream.write_all(&query_frame(500 + i as u64, s)).unwrap();
    }
    let mut seen = vec![false; spectra.len()];
    for _ in 0..spectra.len() {
        match read_response(&mut rd) {
            Response::Result {
                req_id,
                psms,
                flags,
            } => {
                let i = (req_id - 500) as usize;
                assert!(!seen[i], "duplicate response for id {req_id}");
                seen[i] = true;
                assert_eq!(
                    flags & proto::RESULT_FLAG_DEGRADED,
                    proto::RESULT_FLAG_DEGRADED,
                    "id {req_id} must be flagged degraded"
                );
                assert!(psms.is_empty(), "degraded results carry no PSMs");
            }
            other => panic!("expected degraded result, got {other:?}"),
        }
    }
    assert!(seen.iter().all(|&s| s));
    drop(stream);
    handle.shutdown();
    let stats = runner.join().unwrap();
    assert_eq!(stats.degraded, spectra.len() as u64);
    assert_eq!(stats.responses, spectra.len() as u64);
}

/// A generous wave deadline never trips: results are byte-identical to
/// the no-deadline server's (legacy 0x81 frames — flags stay zero on the
/// wire) and the degraded counter stays at zero.
#[test]
fn generous_wave_deadline_never_degrades() {
    let cfg = ServeConfig {
        wave_deadline: Some(std::time::Duration::from_secs(300)),
        ..ServeConfig::default()
    };
    let (addr, handle, runner) = start_daemon(cfg);
    let engine = ResidentEngine::open(corpus_index(), usize::MAX).unwrap();
    let spectra: Vec<Spectrum> = SpectrumReader::open(data("corpus.ms2"))
        .unwrap()
        .map(|s| s.unwrap())
        .collect();

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut rd = BufReader::new(stream.try_clone().unwrap());
    for (i, s) in spectra.iter().take(4).enumerate() {
        stream.write_all(&query_frame(600 + i as u64, s)).unwrap();
        match read_response(&mut rd) {
            Response::Result {
                req_id,
                psms,
                flags,
            } => {
                assert_eq!(req_id, 600 + i as u64);
                assert_eq!(flags, 0);
                let want = engine
                    .search_one(&engine.preprocess(s), &QueryOptions::default())
                    .unwrap()
                    .psms;
                let want: Vec<_> = want
                    .iter()
                    .map(|p| (p.peptide, p.modform, p.shared_peaks, p.score))
                    .collect();
                assert_eq!(psms, want, "id {req_id} differs from direct search");
            }
            other => panic!("expected result, got {other:?}"),
        }
    }
    drop(stream);
    handle.shutdown();
    let stats = runner.join().unwrap();
    assert_eq!(stats.degraded, 0);
}

/// Idle reap: a connection that goes quiet past the idle timeout gets a
/// clean `Bye` and an orderly close — while an *active* connection on the
/// same server keeps working, and the reap is not a protocol error.
#[test]
fn idle_connections_are_reaped_with_a_clean_bye() {
    let cfg = ServeConfig {
        idle_timeout: Some(std::time::Duration::from_millis(300)),
        ..ServeConfig::default()
    };
    let (addr, handle, runner) = start_daemon(cfg);
    let spectra: Vec<Spectrum> = SpectrumReader::open(data("corpus.ms2"))
        .unwrap()
        .map(|s| s.unwrap())
        .collect();

    // The idle victim: one query, then silence.
    let mut idle = TcpStream::connect(addr).unwrap();
    let mut idle_rd = BufReader::new(idle.try_clone().unwrap());
    idle.write_all(&query_frame(900, &spectra[0])).unwrap();
    match read_response(&mut idle_rd) {
        Response::Result { req_id: 900, .. } => {}
        other => panic!("expected result, got {other:?}"),
    }
    // The server reaps us after ~300 ms of quiet: a Bye, then EOF.
    match read_response(&mut idle_rd) {
        Response::Bye { req_id } => assert_eq!(req_id, 0, "unsolicited Bye uses id 0"),
        other => panic!("expected reap Bye, got {other:?}"),
    }
    assert!(proto::read_frame(&mut idle_rd).unwrap().is_none());

    // A fresh connection still gets answers after the reap.
    let mut live = TcpStream::connect(addr).unwrap();
    let mut live_rd = BufReader::new(live.try_clone().unwrap());
    live.write_all(&query_frame(901, &spectra[1])).unwrap();
    match read_response(&mut live_rd) {
        Response::Result { req_id: 901, .. } => {}
        other => panic!("expected result, got {other:?}"),
    }
    drop(live);
    drop(idle);
    handle.shutdown();
    let stats = runner.join().unwrap();
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.requests, 2);
    // Two query results plus the reap Bye, which goes out as an ordinary
    // response frame.
    assert_eq!(stats.responses, 3);
}
