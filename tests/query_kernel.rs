//! Banded query kernel equivalence over the checked-in real-format corpus
//! (`tests/data/`): the precursor-banded scan, the full-bin scan, and the
//! O(peaks × fragments) brute force must agree on every finding across a
//! precursor-tolerance sweep — including the open-search edge where the
//! band covers the whole index, and bands that admit zero entries. Plus
//! the CI smoke assertion: at 1 Da the banded kernel scans strictly fewer
//! postings than the full scan on this corpus.

use lbe::bio::digest::DigestParams;
use lbe::bio::mods::{ModForm, ModSpec};
use lbe::bio::peptide::PeptideDb;
use lbe::core::ingest::{load_proteome_digested, load_queries};
use lbe::index::query::brute_force_shared_peaks;
use lbe::index::{IndexBuilder, ScanMode, Searcher, SlmConfig};
use lbe::spectra::preprocess::PreprocessParams;
use lbe::spectra::spectrum::Spectrum;
use lbe::spectra::theo::TheoSpectrum;
use proptest::prelude::*;
use std::sync::OnceLock;

fn data(name: &str) -> String {
    format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Corpus fixture: digested peptide db + the 24 preprocessed query spectra,
/// streamed from the checked-in real-format files once per process.
fn corpus() -> &'static (PeptideDb, Vec<Spectrum>) {
    static CORPUS: OnceLock<(PeptideDb, Vec<Spectrum>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let (db, _) =
            load_proteome_digested(data("corpus.fasta"), &DigestParams::default()).unwrap();
        let (queries, _) = load_queries(data("corpus.mgf"), &PreprocessParams::default()).unwrap();
        assert_eq!(queries.len(), 24);
        (db, queries)
    })
}

/// Exhaustive config: every shared peak is a candidate and nothing is
/// truncated, so the three implementations can be compared PSM-for-PSM.
fn exhaustive_cfg(tolerance: f64) -> SlmConfig {
    SlmConfig {
        precursor_tolerance: tolerance,
        shared_peak_threshold: 1,
        top_k: usize::MAX,
        ..SlmConfig::default()
    }
}

/// Asserts banded == full-scan == brute force on the whole corpus at one
/// precursor tolerance. Returns accumulated (banded, full) postings
/// scanned for callers that also check work counters.
fn assert_equivalence_at(tolerance: f64) -> (u64, u64) {
    let (db, queries) = corpus();
    let cfg = exhaustive_cfg(tolerance);
    let index = IndexBuilder::new(cfg.clone(), ModSpec::none()).build(db);
    let mut searcher = Searcher::new(&index);
    let mut scanned = (0u64, 0u64);
    for q in queries {
        let banded = searcher.search_with_mode(q, ScanMode::Auto);
        let full = searcher.search_with_mode(q, ScanMode::FullScan);
        // The two kernel paths: identical findings, identical candidate
        // counts; only the scanned/skipped split may differ.
        assert_eq!(banded.psms, full.psms, "scan {} @ ΔM {tolerance}", q.scan);
        assert_eq!(banded.stats.candidates, full.stats.candidates);
        assert_eq!(banded.stats.bins_touched, full.stats.bins_touched);
        assert_eq!(
            banded.stats.postings_scanned + banded.stats.postings_skipped_by_band,
            full.stats.postings_scanned,
            "every bin posting is either scanned or accounted as skipped"
        );
        scanned.0 += banded.stats.postings_scanned;
        scanned.1 += full.stats.postings_scanned;

        // Brute force, per peptide: expected shared-peak count and
        // admission.
        let qm = q.precursor_neutral_mass();
        for (pid, pep) in db.iter() {
            let theo = TheoSpectrum::from_sequence(
                pep.sequence(),
                &ModForm::unmodified(),
                &ModSpec::none(),
                &cfg.theo,
            );
            let shared = brute_force_shared_peaks(&cfg, q, &theo);
            let admitted = cfg.precursor_admits(qm, theo.precursor_mass as f32 as f64);
            let found = banded.psms.iter().find(|p| p.peptide == pid);
            match found {
                Some(p) => {
                    assert!(admitted, "scan {}: peptide {pid} outside ΔM", q.scan);
                    assert_eq!(p.shared_peaks, shared, "scan {} peptide {pid}", q.scan);
                }
                None => assert!(
                    shared == 0 || !admitted,
                    "scan {}: peptide {pid} shares {shared} peaks inside ΔM {tolerance} but was not found",
                    q.scan
                ),
            }
        }
    }
    scanned
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tolerance sweep: for any ΔM from sub-bin to wider than the whole
    /// corpus mass range, banded == full-scan == brute force.
    #[test]
    fn banded_equals_full_scan_equals_brute_force(exp in -3.0f64..4.0) {
        // Log-uniform ΔM in [0.001, 10000] Da: ppm-like windows, the 1 Da
        // acceptance point, open-mod windows, and bands swallowing the
        // whole index all get drawn.
        assert_equivalence_at(10f64.powf(exp));
    }
}

#[test]
fn open_search_edge_band_covers_everything() {
    // ΔM = ∞: Auto takes the full-bin path outright — and a finite band
    // wider than the corpus mass range must agree with it posting for
    // posting (nothing is skippable when everything is admitted).
    let (banded, full) = assert_equivalence_at(f64::INFINITY);
    assert_eq!(banded, full, "open search has nothing to skip");
    let (banded_wide, full_wide) = assert_equivalence_at(1e7);
    assert_eq!(banded_wide, full_wide, "all-covering band skips nothing");
    assert_eq!(full_wide, full, "same full-scan work either way");
}

#[test]
fn empty_band_scans_nothing_but_finds_the_same_nothing() {
    // Shift every query's precursor 5 kDa up: fragment bins still overlap
    // the index, but no entry mass is admissible — the banded kernel must
    // scan zero postings while the full scan still walks the bins.
    let (db, queries) = corpus();
    let cfg = exhaustive_cfg(0.5);
    let index = IndexBuilder::new(cfg, ModSpec::none()).build(db);
    let mut searcher = Searcher::new(&index);
    let mut skipped_total = 0u64;
    for q in queries {
        let mut shifted = q.clone();
        shifted.precursor_mz += 5000.0 / shifted.charge.max(1) as f64;
        let banded = searcher.search_with_mode(&shifted, ScanMode::Auto);
        let full = searcher.search_with_mode(&shifted, ScanMode::FullScan);
        assert!(banded.psms.is_empty());
        assert!(full.psms.is_empty());
        assert_eq!(banded.stats.postings_scanned, 0, "scan {}", q.scan);
        assert_eq!(
            banded.stats.postings_skipped_by_band,
            full.stats.postings_scanned
        );
        skipped_total += banded.stats.postings_skipped_by_band;
    }
    assert!(skipped_total > 0, "the corpus peaks do touch occupied bins");
}

/// The CI smoke assertion (cheap, runs in every `cargo test`): at 1 Da the
/// banded kernel must scan strictly fewer postings than the full scan on
/// the checked-in corpus — the whole point of the mass-banded layout.
#[test]
fn smoke_banded_scans_strictly_fewer_postings_at_1da() {
    let (banded, full) = assert_equivalence_at(1.0);
    assert!(
        banded < full,
        "banded kernel scanned {banded} postings, full scan {full} — banding saved nothing"
    );
    println!("corpus @ 1 Da: banded {banded} vs full {full} postings scanned");
}
