//! Streaming real-data ingest: golden-file regression tests over the
//! checked-in `tests/data/` corpus, streamed == eager reader equivalence,
//! proptest round trips through every format, and the hand-built msconvert
//! regression file pinning the two former mzML reader bugs (hardcoded
//! binary precision; whole-file failure on MS1 survey scans).

use lbe::cli::args::Args;
use lbe::cli::commands::dispatch;
use lbe::spectra::reader::{SpectrumFormat, SpectrumReader};
use lbe::spectra::spectrum::{Peak, Spectrum};
use lbe::spectra::{read_mgf, read_ms2, read_mzml_with_stats, write_mgf, write_ms2, write_mzml};
use proptest::prelude::*;

fn data(name: &str) -> String {
    format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join("lbe_streaming_ingest").join(name);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn cli(cmdline: &str) -> String {
    let args = Args::parse(cmdline.split_whitespace().map(String::from)).unwrap();
    let mut out = Vec::new();
    dispatch(&args, &mut out).unwrap_or_else(|e| panic!("{cmdline}: {e}"));
    String::from_utf8(out).unwrap()
}

/// The full CLI pipeline over the checked-in corpus must reproduce the
/// committed reports byte for byte — the in-process twin of the CI job's
/// `diff` step.
#[test]
fn golden_corpus_cli_reports_match_committed() {
    let d = tmpdir("golden");
    let p = |n: &str| d.join(n).to_string_lossy().to_string();
    let msg = cli(&format!(
        "digest --in {} --out {}",
        data("corpus.fasta"),
        p("pep.fasta")
    ));
    assert!(msg.contains("6 proteins"), "{msg}");
    cli(&format!(
        "index --db {} --out {}",
        p("pep.fasta"),
        p("c.lbe")
    ));
    for (queries, expected) in [
        ("corpus.ms2", "expected_search_text.tsv"),
        ("corpus.mgf", "expected_search_text.tsv"),
        ("corpus.mzML", "expected_search_mzml.tsv"),
    ] {
        cli(&format!(
            "search --index {} --queries {} --out {}",
            p("c.lbe"),
            data(queries),
            p("report.tsv")
        ));
        let got = std::fs::read_to_string(p("report.tsv")).unwrap();
        let want = std::fs::read_to_string(data(expected)).unwrap();
        assert_eq!(got, want, "{queries} report drifted from {expected}");
    }
}

/// Every corpus file reads identically through the streaming reader and
/// the eager per-format reader.
#[test]
fn corpus_streamed_equals_eager_in_all_formats() {
    for (file, format) in [
        ("corpus.ms2", SpectrumFormat::Ms2),
        ("corpus.mgf", SpectrumFormat::Mgf),
        ("corpus.mzML", SpectrumFormat::MzMl),
    ] {
        let path = data(file);
        let reader = SpectrumReader::open(&path).unwrap();
        assert_eq!(reader.format(), format, "{file}");
        let streamed: Vec<Spectrum> = reader.collect::<Result<_, _>>().unwrap();
        let bytes = std::fs::File::open(&path).unwrap();
        let eager = match format {
            SpectrumFormat::Ms2 => read_ms2(bytes).unwrap(),
            SpectrumFormat::Mgf => read_mgf(bytes).unwrap(),
            SpectrumFormat::MzMl => read_mzml_with_stats(bytes).unwrap().0,
        };
        assert_eq!(streamed, eager, "{file}: streamed != eager");
        assert_eq!(streamed.len(), 24, "{file}");
    }
}

/// The three formats carry the same 24 spectra (same scans, charges, peak
/// counts; peak values agree to text-format precision).
#[test]
fn corpus_formats_agree() {
    let ms2: Vec<Spectrum> = SpectrumReader::read_all(data("corpus.ms2")).unwrap();
    let mgf: Vec<Spectrum> = SpectrumReader::read_all(data("corpus.mgf")).unwrap();
    let mzml: Vec<Spectrum> = SpectrumReader::read_all(data("corpus.mzML")).unwrap();
    for other in [&mgf, &mzml] {
        assert_eq!(ms2.len(), other.len());
        for (a, b) in ms2.iter().zip(other.iter()) {
            assert_eq!(a.scan, b.scan);
            assert_eq!(a.charge, b.charge);
            assert_eq!(a.peak_count(), b.peak_count());
            assert!((a.precursor_mz - b.precursor_mz).abs() < 1e-4);
            for (pa, pb) in a.peaks.iter().zip(&b.peaks) {
                assert!((pa.mz - pb.mz).abs() < 1e-4);
            }
        }
    }
}

/// The hand-built msconvert regression file: interleaved MS1 survey scans
/// are skipped (and counted), a 64-bit intensity array decodes to its real
/// values (not garbage f32 pairs), and a 32-bit m/z array is honored.
#[test]
fn msconvert_regression_file_parses_correctly() {
    let path = data("msconvert_64bit_ms1.mzML");
    let bytes = std::fs::File::open(&path).unwrap();
    let (eager, stats) = read_mzml_with_stats(bytes).unwrap();
    assert_eq!(stats.skipped_non_ms2, 2, "two MS1 survey scans");
    assert_eq!(stats.spectra, 2);
    assert_eq!(eager.len(), 2);

    // Spectrum scan=2: 64-bit m/z AND 64-bit intensity arrays.
    assert_eq!(eager[0].scan, 2);
    assert_eq!(eager[0].charge, 2);
    let mzs: Vec<f64> = eager[0].peaks.iter().map(|p| p.mz).collect();
    let ints: Vec<f32> = eager[0].peaks.iter().map(|p| p.intensity).collect();
    assert_eq!(mzs, vec![175.118952, 276.166631, 389.250695]);
    assert_eq!(ints, vec![1234.5, 77.125, 3001.25]);

    // Spectrum scan=4: 32-bit m/z and 32-bit intensity arrays.
    assert_eq!(eager[1].scan, 4);
    let mzs: Vec<f64> = eager[1].peaks.iter().map(|p| p.mz).collect();
    let ints: Vec<f32> = eager[1].peaks.iter().map(|p| p.intensity).collect();
    assert_eq!(mzs, vec![147.125, 260.1875]); // exactly representable in f32
    assert_eq!(ints, vec![55.5, 44.25]);

    // The streaming reader agrees bit for bit, including the skip counter.
    let mut reader = SpectrumReader::open(&path).unwrap();
    let streamed: Vec<Spectrum> = reader.by_ref().collect::<Result<_, _>>().unwrap();
    assert_eq!(streamed, eager);
    assert_eq!(reader.skipped_non_ms2(), 2);
}

/// `simulate --stream-db` over the corpus produces the identical report to
/// the in-memory run (the engine's streamed partition extraction is
/// invisible end to end).
#[test]
fn corpus_simulate_stream_db_is_invisible() {
    let d = tmpdir("stream_db");
    let p = |n: &str| d.join(n).to_string_lossy().to_string();
    cli(&format!(
        "digest --in {} --out {}",
        data("corpus.fasta"),
        p("pep.fasta")
    ));
    let base = format!(
        "simulate --db {} --queries {} --ranks 4 --csv",
        p("pep.fasta"),
        data("corpus.mzML")
    );
    assert_eq!(cli(&base), cli(&format!("{base} --stream-db")));
}

static CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary spectra, written through each format writer and read back
    /// both eagerly and through the streaming reader: streamed == eager,
    /// bit-identical, in every format.
    #[test]
    fn round_trip_streamed_equals_eager(
        raw in prop::collection::vec(
            (
                0u32..40,
                100.0f64..2000.0,
                1u8..=4,
                prop::collection::vec((50.0f64..2000.0, 0.0f32..100_000.0), 0..30),
            ),
            0..10,
        )
    ) {
        let spectra: Vec<Spectrum> = raw
            .into_iter()
            .map(|(scan, premz, charge, peaks)| {
                Spectrum::new(
                    scan,
                    premz,
                    charge,
                    peaks.into_iter().map(|(m, i)| Peak::new(m, i)).collect(),
                )
            })
            .collect();
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let d = tmpdir("proptest");

        // MS2.
        let path = d.join(format!("case{case}.ms2"));
        let mut buf = Vec::new();
        write_ms2(&mut buf, &spectra).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let eager = read_ms2(&buf[..]).unwrap();
        let streamed: Vec<Spectrum> =
            SpectrumReader::open(&path).unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&streamed, &eager, "ms2");
        std::fs::remove_file(&path).ok();

        // MGF (duplicate scan ids are legal input; both readers must agree).
        let path = d.join(format!("case{case}.mgf"));
        let mut buf = Vec::new();
        write_mgf(&mut buf, &spectra).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let eager = read_mgf(&buf[..]).unwrap();
        let streamed: Vec<Spectrum> =
            SpectrumReader::open(&path).unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&streamed, &eager, "mgf");
        std::fs::remove_file(&path).ok();

        // mzML (binary arrays: the round trip itself is bit-exact too).
        let path = d.join(format!("case{case}.mzML"));
        let mut buf = Vec::new();
        write_mzml(&mut buf, &spectra).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let eager = read_mzml_with_stats(&buf[..]).unwrap().0;
        let streamed: Vec<Spectrum> =
            SpectrumReader::open(&path).unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&streamed, &eager, "mzml");
        for (orig, back) in spectra.iter().zip(&eager) {
            for (po, pb) in orig.peaks.iter().zip(&back.peaks) {
                prop_assert_eq!(po.mz.to_bits(), pb.mz.to_bits());
                prop_assert_eq!(po.intensity.to_bits(), pb.intensity.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
