//! PR 7's transport contract, tested from the outside:
//!
//! * the **collectives equivalence suite** — one SPMD program exercising
//!   every collective with mixed payload types, run on both the threaded
//!   simulator and a real loopback-TCP mesh, asserting bit-identical
//!   results;
//! * **typed failure surfaces** — timeouts and codec mismatches on the TCP
//!   backend come back as `CommError` values with rank/tag context, never
//!   panics;
//! * **codec fuzzing** — garbage bytes, truncations, and forged length
//!   prefixes fed to the wire decoder produce typed errors, never panics
//!   or huge allocations;
//! * the **CLI layer** — `lbe cluster` hostfile validation errors, and the
//!   end-to-end distributed build + search over both backends diffed
//!   against the committed goldens.

use lbe::cluster::wire::{decode_msg, encode_msg};
use lbe::cluster::{
    Cluster, ClusterConfig, CommCostModel, CommError, Communicator, Hostfile, TcpConfig,
    TcpTransport, WireError,
};
use proptest::prelude::*;
use std::net::TcpListener;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Harness: run the same rank program on both backends
// ---------------------------------------------------------------------------

/// Runs `f` on every rank of a real TCP mesh over loopback, one OS thread
/// per rank (race-free port handoff: the listeners are bound first and
/// passed in, so no other process can steal a port between hostfile
/// generation and connect). Returns results in rank order.
fn tcp_cluster<T, F>(ranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Communicator) -> T + Sync,
{
    let listeners: Vec<TcpListener> = (0..ranks)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let hostfile =
        Hostfile::from_addrs(listeners.iter().map(|l| l.local_addr().unwrap()).collect());
    let f = &f;
    let hf = &hostfile;
    std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                scope.spawn(move || {
                    let transport = TcpTransport::connect_with_listener(
                        hf,
                        rank,
                        listener,
                        &TcpConfig::default(),
                    )
                    .unwrap();
                    let mut comm = Communicator::over(
                        Box::new(transport),
                        CommCostModel::default(),
                        Duration::from_secs(30),
                    );
                    f(&mut comm)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// The equivalence program: every collective, mixed payload types, with
/// data flowing through each rank so a single wrong byte anywhere changes
/// the output. Returns everything it computed.
#[allow(clippy::type_complexity)]
fn collective_gauntlet(
    comm: &mut Communicator,
) -> (
    String,
    Option<Vec<(u32, String)>>,
    u64,
    Vec<(u16, Vec<u8>)>,
    (i64, f64),
    Option<u64>,
    f64,
    Vec<f64>,
) {
    let me = comm.rank();
    let p = comm.size();

    // Point-to-point ring warm-up: me -> right, recv from left.
    comm.send((me + 1) % p, 7, (me as u32, format!("from-{me}")), 16);
    let (left_rank, left_msg) = comm.recv::<(u32, String)>((me + p - 1) % p, 7);
    assert_eq!(left_rank as usize, (me + p - 1) % p);

    let bcast = comm.broadcast(
        0,
        (me == 0).then(|| format!("root says: {left_msg}")),
        left_msg.len(),
    );
    let gathered = comm.gather(0, (me as u32, bcast.clone()), bcast.len() + 4);
    let reduced = comm.all_reduce((me as u64 + 1) * 100, |a, b| a + b, 8);
    let all = comm.all_gather((me as u16, vec![me as u8; me + 1]), me + 3);
    let scattered = comm.scatter(
        0,
        (me == 0).then(|| (0..p).map(|r| (-(r as i64), r as f64 * 0.5)).collect()),
        16,
    );
    let max_at_root = comm.reduce(0, reduced + me as u64, u64::max, 8);
    let sum = comm.all_reduce_f64(scattered.1, |a, b| a + b);
    let times = comm.all_gather_f64(me as f64);
    comm.barrier();
    (
        bcast,
        gathered,
        reduced,
        all,
        scattered,
        max_at_root,
        sum,
        times,
    )
}

#[test]
fn collectives_bit_identical_across_backends() {
    let p = 4;
    let sim = Cluster::new(ClusterConfig::new(p)).run(collective_gauntlet);
    let tcp = tcp_cluster(p, collective_gauntlet);
    assert_eq!(sim.results.len(), tcp.len());
    for (rank, (s, t)) in sim.results.iter().zip(&tcp).enumerate() {
        // Everything except the clock samples (virtual vs wall) must agree
        // bit-for-bit.
        assert_eq!(s.0, t.0, "broadcast differs at rank {rank}");
        assert_eq!(s.1, t.1, "gather differs at rank {rank}");
        assert_eq!(s.2, t.2, "all_reduce differs at rank {rank}");
        assert_eq!(s.3, t.3, "all_gather differs at rank {rank}");
        assert_eq!(s.4, t.4, "scatter differs at rank {rank}");
        assert_eq!(s.5, t.5, "reduce differs at rank {rank}");
        assert_eq!(s.6, t.6, "all_reduce_f64 differs at rank {rank}");
        assert_eq!(s.7, t.7, "all_gather_f64 differs at rank {rank}");
    }
    // Spot-check the sim values themselves so an agreeing-but-wrong pair
    // of backends cannot pass.
    let (_, gathered, reduced, ..) = &sim.results[0];
    assert_eq!(gathered.as_ref().unwrap().len(), p);
    assert_eq!(*reduced, (1..=p as u64).map(|r| r * 100).sum::<u64>());
    for (rank, r) in sim.results.iter().enumerate() {
        assert_eq!(r.4, (-(rank as i64), rank as f64 * 0.5), "scatter payload");
    }
}

#[test]
fn tcp_large_payload_round_trip() {
    // Bigger than the 64 KiB preallocation cap, so the capped-prealloc
    // read path is exercised with a genuine multi-chunk payload.
    let blob: Vec<u8> = (0..200_000u32)
        .map(|i| (i.wrapping_mul(2654435761)) as u8)
        .collect();
    let out = tcp_cluster(2, |comm| {
        if comm.rank() == 0 {
            let n = blob.len();
            comm.send(1, 42, blob.clone(), n);
            comm.recv::<u64>(1, 43)
        } else {
            let got = comm.recv::<Vec<u8>>(0, 42);
            assert_eq!(got, blob);
            comm.send(0, 43, got.len() as u64, 8);
            0
        }
    });
    assert_eq!(out[0], blob.len() as u64);
}

// ---------------------------------------------------------------------------
// Typed failure surfaces
// ---------------------------------------------------------------------------

#[test]
fn tcp_self_recv_miss_is_typed_timeout() {
    // A rank is single-threaded: a self-receive with nothing in the
    // loopback queue can never be satisfied, so it must fail fast as a
    // typed Timeout carrying the (rank, src, tag) context — not block for
    // the full deadline, and never panic.
    let out = tcp_cluster(2, |comm| {
        let me = comm.rank();
        let err = comm.try_recv::<u64>(me, 99).unwrap_err();
        let shape = match err {
            CommError::Timeout { rank, src, tag } => (rank, src, tag),
            other => panic!("expected Timeout, got {other}"),
        };
        comm.barrier();
        shape
    });
    assert_eq!(out, vec![(0, 0, 99), (1, 1, 99)]);
}

#[test]
fn tcp_peer_death_is_typed_disconnect() {
    // Rank 0 exits immediately; rank 1's pending receive must surface the
    // closed socket as a typed Disconnected naming the dead peer.
    let out = tcp_cluster(2, |comm| {
        if comm.rank() == 0 {
            return (0, 0); // drop the transport: sockets close
        }
        let err = comm.try_recv::<u64>(0, 5).unwrap_err();
        match err {
            CommError::Disconnected { rank, peer, .. } => (rank, peer),
            other => panic!("expected Disconnected, got {other}"),
        }
    });
    assert_eq!(out[1], (1, 0));
}

#[test]
fn tcp_type_mismatch_is_typed_codec_error() {
    tcp_cluster(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, 123u32, 4);
        } else {
            let err = comm.try_recv::<String>(0, 5).unwrap_err();
            match err {
                CommError::Codec {
                    rank,
                    src,
                    tag,
                    err,
                } => {
                    assert_eq!((rank, src, tag), (1, 0, 5));
                    assert!(matches!(err, WireError::TypeMismatch { .. }), "{err}");
                }
                other => panic!("expected Codec, got {other}"),
            }
        }
        comm.barrier();
    });
}

// ---------------------------------------------------------------------------
// Codec fuzzing
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic the typed decoder — any outcome must be
    /// a clean `Ok`/`Err`.
    #[test]
    fn decoder_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_msg::<u64>(&bytes);
        let _ = decode_msg::<String>(&bytes);
        let _ = decode_msg::<Vec<u32>>(&bytes);
        let _ = decode_msg::<(u32, String, Vec<f64>)>(&bytes);
        let _ = decode_msg::<Option<Vec<(u16, u16)>>>(&bytes);
    }

    /// Every strict prefix of a valid message fails with a typed error —
    /// truncation can never be mistaken for a shorter valid value.
    #[test]
    fn truncation_always_errors(v in prop::collection::vec(any::<u32>(), 0..20), s in "[a-zA-Z0-9 ]{0,40}") {
        let msg = encode_msg(&(v, s));
        for cut in 0..msg.len() {
            prop_assert!(decode_msg::<(Vec<u32>, String)>(&msg[..cut]).is_err(), "cut={cut}");
        }
    }

    /// A forged element count in a `Vec` length prefix is rejected before
    /// any allocation of that size can happen.
    #[test]
    fn forged_vec_length_errors(n in 257u64..u64::MAX) {
        // Hand-build: fingerprint of Vec<u64> + forged count + 256 bytes.
        let mut msg = encode_msg(&vec![0u64; 4]);
        let fake = encode_msg(&n);
        // Overwrite the count field (bytes 4..12) with the forged one —
        // the payload still holds only 4 elements (32 bytes).
        msg[4..12].copy_from_slice(&fake[4..12]);
        prop_assert!(matches!(
            decode_msg::<Vec<u64>>(&msg),
            Err(WireError::Truncated) | Err(WireError::Malformed(_))
        ));
    }

    /// Round trip: encode → decode is the identity for a composite type.
    #[test]
    fn round_trip_composite(
        a in any::<u64>(),
        b in "[a-zA-Z0-9 ]{0,32}",
        c in prop::collection::vec(any::<f32>(), 0..16),
        d_val in any::<i64>(),
        d_flag in any::<bool>(),
        d_some in any::<bool>(),
    ) {
        let v = (a, b, c, d_some.then_some((d_val, d_flag)));
        let decoded = decode_msg::<(u64, String, Vec<f32>, Option<(i64, bool)>)>(&encode_msg(&v)).unwrap();
        // NaN-safe comparison: compare bit patterns for the float payload.
        prop_assert_eq!(decoded.0, v.0);
        prop_assert_eq!(&decoded.1, &v.1);
        prop_assert_eq!(
            decoded.2.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            v.2.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(decoded.3, v.3);
    }
}

// ---------------------------------------------------------------------------
// CLI layer: hostfile validation + end-to-end build/search over both backends
// ---------------------------------------------------------------------------

fn run_cli(cmdline: &[String]) -> Result<String, String> {
    let args = lbe::cli::Args::parse(cmdline.iter().cloned()).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    lbe::cli::dispatch(&args, &mut out)
        .map_err(|e| e.to_string())
        .map(|()| String::from_utf8(out).unwrap())
}

fn cli(line: &str) -> Result<String, String> {
    run_cli(
        &line
            .split_whitespace()
            .map(String::from)
            .collect::<Vec<_>>(),
    )
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir()
        .join("lbe_cluster_cli_tests")
        .join(name);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Digests the checked-in corpus once per test dir and returns the peptide
/// FASTA path.
fn corpus_db(dir: &std::path::Path) -> String {
    let db = dir.join("corpus_pep.fasta").to_string_lossy().to_string();
    cli(&format!("digest --in tests/data/corpus.fasta --out {db}")).unwrap();
    db
}

#[test]
fn cluster_cli_rejects_backend_misuse() {
    let err = cli("cluster search --db x --queries y --out z").unwrap_err();
    assert!(err.contains("exactly one backend"), "{err}");
    let err = cli("cluster search --sim --launch --db x --queries y --out z").unwrap_err();
    assert!(err.contains("exactly one backend"), "{err}");
    let err = cli("cluster search --sim --rank 1 --db x --queries y --out z").unwrap_err();
    assert!(
        err.contains("--rank only makes sense with --hostfile"),
        "{err}"
    );
    let err = cli("cluster frobnicate --sim").unwrap_err();
    assert!(err.contains("cluster needs a mode"), "{err}");
    let err = cli("cluster search --sim --ranks 0 --db x --queries y --out z").unwrap_err();
    assert!(err.contains("--ranks must be at least 1"), "{err}");
}

#[test]
fn cluster_cli_hostfile_errors_are_clean() {
    let d = tmpdir("hostfile_errors");
    let hf = |name: &str, text: &str| {
        let p = d.join(name);
        std::fs::write(&p, text).unwrap();
        p.to_string_lossy().to_string()
    };

    // Duplicate rank.
    let path = hf("dup", "0 127.0.0.1:9001\n0 127.0.0.1:9002\n");
    let err = cli(&format!(
        "cluster search --hostfile {path} --rank 0 --db x --queries y --out z"
    ))
    .unwrap_err();
    assert!(err.contains("duplicate rank"), "{err}");

    // Unparseable address.
    let path = hf("badaddr", "not-an-address\n");
    let err = cli(&format!(
        "cluster search --hostfile {path} --rank 0 --db x --queries y --out z"
    ))
    .unwrap_err();
    assert!(err.contains(&path), "{err}");

    // --ranks cross-check mismatch.
    let path = hf("two", "127.0.0.1:9001\n127.0.0.1:9002\n");
    let err = cli(&format!(
        "cluster search --hostfile {path} --rank 0 --ranks 4 --db x --queries y --out z"
    ))
    .unwrap_err();
    assert!(err.contains("2 ranks but 4 were requested"), "{err}");

    // --rank out of range.
    let err = cli(&format!(
        "cluster search --hostfile {path} --rank 5 --db x --queries y --out z"
    ))
    .unwrap_err();
    assert!(err.contains("out of range"), "{err}");

    // Missing --rank.
    let err = cli(&format!(
        "cluster search --hostfile {path} --db x --queries y --out z"
    ))
    .unwrap_err();
    assert!(err.contains("--rank"), "{err}");

    // Missing file.
    let err = cli(&format!(
        "cluster search --hostfile {} --rank 0 --db x --queries y --out z",
        d.join("nope").display()
    ))
    .unwrap_err();
    assert!(err.contains("hostfile"), "{err}");
}

#[test]
fn cluster_search_sim_matches_committed_golden() {
    let d = tmpdir("search_sim");
    let db = corpus_db(&d);
    let out = d.join("r.tsv").to_string_lossy().to_string();
    let bench = d.join("b.json").to_string_lossy().to_string();
    let msg = cli(&format!(
        "cluster search --sim --ranks 4 --db {db} --queries tests/data/corpus.ms2 \
         --out {out} --bench-out {bench}"
    ))
    .unwrap();
    assert!(msg.contains("cluster search (sim, 4 ranks)"), "{msg}");
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        std::fs::read_to_string("tests/data/expected_cluster_search_text.tsv").unwrap()
    );
    let bench_json = std::fs::read_to_string(&bench).unwrap();
    assert!(bench_json.contains("\"backend\": \"sim\""), "{bench_json}");
    assert!(
        bench_json.contains("\"time_base\": \"virtual\""),
        "{bench_json}"
    );
    assert!(
        bench_json.contains("\"load_imbalance_pct\""),
        "{bench_json}"
    );
}

/// The distributed report and the single-process chunked-index report are
/// **byte-identical**: both rank score ties on *global* `(peptide,
/// modform)` ids before any top-k truncation — the chunked path translates
/// chunk-local ids inside the searcher (pre-heap), the distributed merge
/// translates via the mapping table before its sort. A regression in
/// either layer (e.g. truncating on local-id order again) shows up here as
/// a divergence at an exact-score tie crossing the top-k boundary, which
/// the corpus deliberately contains (scan 7, slot 10).
#[test]
fn cluster_golden_is_byte_identical_to_search_golden() {
    let single = std::fs::read_to_string("tests/data/expected_search_text.tsv").unwrap();
    let cluster = std::fs::read_to_string("tests/data/expected_cluster_search_text.tsv").unwrap();
    for (ln, (s, c)) in single.lines().zip(cluster.lines()).enumerate() {
        assert_eq!(s, c, "goldens diverge at line {}", ln + 1);
    }
    assert_eq!(single, cluster);
}

#[test]
fn cluster_search_tcp_matches_sim_byte_for_byte() {
    let d = tmpdir("search_tcp");
    let db = corpus_db(&d);
    let sim_out = d.join("sim.tsv").to_string_lossy().to_string();
    cli(&format!(
        "cluster search --sim --ranks 3 --db {db} --queries tests/data/corpus.ms2 --out {sim_out}"
    ))
    .unwrap();

    // Real TCP mesh: one thread per rank, each going through the full CLI
    // path with a pre-written hostfile.
    let ranks = 3;
    let addrs: Vec<_> = {
        let ls: Vec<TcpListener> = (0..ranks)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        ls.iter().map(|l| l.local_addr().unwrap()).collect()
    };
    let hostfile = d.join("hostfile");
    std::fs::write(
        &hostfile,
        addrs
            .iter()
            .enumerate()
            .map(|(r, a)| format!("{r} {a}\n"))
            .collect::<String>(),
    )
    .unwrap();
    let outs: Vec<String> = (0..ranks)
        .map(|r| d.join(format!("tcp-{r}.tsv")).to_string_lossy().to_string())
        .collect();
    std::thread::scope(|scope| {
        for (r, out) in outs.iter().enumerate() {
            let db = &db;
            let hostfile = &hostfile;
            scope.spawn(move || {
                cli(&format!(
                    "cluster search --hostfile {} --rank {r} --ranks 3 --db {db} \
                     --queries tests/data/corpus.ms2 --out {out}",
                    hostfile.display()
                ))
                .unwrap();
            });
        }
    });
    assert_eq!(
        std::fs::read_to_string(&outs[0]).unwrap(),
        std::fs::read_to_string(&sim_out).unwrap(),
        "TCP report must be byte-identical to the simulator report"
    );
    // Non-root ranks write nothing.
    for out in &outs[1..] {
        assert!(!std::path::Path::new(out).exists());
    }
}

#[test]
fn cluster_build_tcp_shards_byte_identical_to_sim() {
    let d = tmpdir("build_both");
    let db = corpus_db(&d);
    let sim_dir = d.join("shards_sim");
    cli(&format!(
        "cluster build --sim --ranks 2 --db {db} --out {}",
        sim_dir.display()
    ))
    .unwrap();

    let ranks = 2;
    let addrs: Vec<_> = {
        let ls: Vec<TcpListener> = (0..ranks)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        ls.iter().map(|l| l.local_addr().unwrap()).collect()
    };
    let hostfile = d.join("hostfile");
    std::fs::write(
        &hostfile,
        addrs
            .iter()
            .enumerate()
            .map(|(r, a)| format!("{r} {a}\n"))
            .collect::<String>(),
    )
    .unwrap();
    let tcp_dir = d.join("shards_tcp");
    std::thread::scope(|scope| {
        for r in 0..ranks {
            let db = &db;
            let hostfile = &hostfile;
            let tcp_dir = &tcp_dir;
            scope.spawn(move || {
                cli(&format!(
                    "cluster build --hostfile {} --rank {r} --db {db} --out {}",
                    hostfile.display(),
                    tcp_dir.display()
                ))
                .unwrap();
            });
        }
    });

    for name in ["manifest.tsv", "shard-0000.slm2", "shard-0001.slm2"] {
        let a = std::fs::read(sim_dir.join(name)).unwrap();
        let b = std::fs::read(tcp_dir.join(name)).unwrap();
        assert_eq!(a, b, "{name} differs between sim and TCP builds");
    }
    // The shards are loadable, validated v2 containers covering the db.
    let manifest = std::fs::read_to_string(sim_dir.join("manifest.tsv")).unwrap();
    assert!(manifest.starts_with("rank\tpeptides\tspectra\tions\tbytes\n"));
    for rank in 0..ranks {
        lbe::index::read_index_path(sim_dir.join(format!("shard-{rank:04}.slm2"))).unwrap();
    }
}
