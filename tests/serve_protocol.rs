//! Serve wire-protocol properties: round-trip framing for every request
//! and response variant, plus malformed-input fuzzing — truncated frames,
//! oversized declared lengths, forged counts, and plain garbage must all
//! come back as clean [`ProtoError`]s, never a panic and never an
//! allocation driven by an attacker-controlled length field (mirroring
//! the on-disk corruption proptests and the `read_index` preallocation
//! cap).

use lbe::core::serve::proto::{
    read_frame, write_frame, ProtoError, Request, Response, CODE_BAD_REQUEST, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Frames a payload and reads it back through the blocking reader.
fn frame_roundtrip(payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, payload).unwrap();
    read_frame(&mut wire.as_slice())
        .expect("well-formed frame")
        .expect("not EOF")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Query requests survive encode → frame → unframe → decode for
    /// arbitrary field values, including both optional overrides in every
    /// presence combination.
    #[test]
    fn query_request_roundtrips(
        req_id in any::<u64>(),
        full_scan in any::<bool>(),
        tol in (any::<bool>(), 0.0001f64..1000.0),
        top_k in (any::<bool>(), 0u32..1000),
        scan in any::<u32>(),
        precursor_mz in 0.0f64..5000.0,
        charge in 0u8..7,
        peaks in prop::collection::vec((0.0f64..5000.0, 0.0f32..1e6), 0..130),
    ) {
        let request = Request::Query {
            req_id,
            full_scan,
            tolerance: tol.0.then_some(tol.1),
            top_k: top_k.0.then_some(top_k.1),
            scan,
            precursor_mz,
            charge,
            peaks,
        };
        let payload = frame_roundtrip(&request.encode());
        prop_assert_eq!(Request::decode(&payload).unwrap(), request);
    }

    /// Ping and Shutdown round-trip for arbitrary request ids.
    #[test]
    fn control_requests_roundtrip(req_id in any::<u64>(), shutdown in any::<bool>()) {
        let request = if shutdown {
            Request::Shutdown { req_id }
        } else {
            Request::Ping { req_id }
        };
        let payload = frame_roundtrip(&request.encode());
        prop_assert_eq!(Request::decode(&payload).unwrap(), request);
    }

    /// Result responses round-trip for arbitrary PSM tables.
    #[test]
    fn result_response_roundtrips(
        req_id in any::<u64>(),
        psms in prop::collection::vec(
            (any::<u32>(), any::<u16>(), any::<u16>(), 0.0f32..1e6), 0..40),
    ) {
        let response = Response::Result { req_id, psms, flags: 0 };
        let payload = frame_roundtrip(&response.encode());
        prop_assert_eq!(Response::decode(&payload).unwrap(), response);
    }

    /// Pong, Bye, and Error responses round-trip, including non-ASCII
    /// error messages.
    #[test]
    fn control_responses_roundtrip(
        req_id in any::<u64>(),
        which in 0u8..3,
        num_chunks in any::<u32>(),
        code in any::<u16>(),
        msg in "[a-zA-Z0-9 çé→]{0,60}",
    ) {
        let response = match which {
            0 => Response::Pong { req_id, protocol_version: PROTOCOL_VERSION, num_chunks },
            1 => Response::Bye { req_id },
            _ => Response::Error { req_id, code, message: msg },
        };
        let payload = frame_roundtrip(&response.encode());
        prop_assert_eq!(Response::decode(&payload).unwrap(), response);
    }

    /// Arbitrary byte soup through the frame reader: every outcome is a
    /// clean EOF, a decoded frame, or a typed error — never a panic. When
    /// a frame does come back, decoding it as a request and as a response
    /// must also be panic-free.
    #[test]
    fn garbage_byte_streams_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut cursor = bytes.as_slice();
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert!(bytes.is_empty() || bytes.len() < 4),
            Ok(Some(payload)) => {
                let _ = Request::decode(&payload);
                let _ = Response::decode(&payload);
            }
            Err(ProtoError::Io(_)) => prop_assert!(false, "in-memory read cannot I/O-fail"),
            Err(_) => {} // Truncated / Oversized / Malformed: all clean
        }
    }

    /// Every strict prefix of a valid frame is rejected as truncated (or
    /// a clean EOF for the empty prefix) — no prefix ever yields a frame.
    #[test]
    fn truncated_frames_are_clean_errors(req_id in any::<u64>(), cut in 0usize..100) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping { req_id }.encode()).unwrap();
        let cut = cut.min(wire.len() - 1);
        match read_frame(&mut &wire[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Err(ProtoError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "prefix of {} bytes gave {:?}", cut, other.is_ok()),
        }
    }

    /// A forged header declaring up to `u32::MAX` bytes against a short
    /// stream fails cleanly — and the reader's preallocation cap means it
    /// cannot be made to reserve the declared amount (the PR 2
    /// `read_index` defence, applied to the socket).
    #[test]
    fn forged_declared_lengths_never_allocate_unbounded(
        declared in 1u32..=u32::MAX,
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut wire = declared.to_le_bytes().to_vec();
        wire.extend_from_slice(&body);
        match read_frame(&mut wire.as_slice()) {
            Err(ProtoError::Oversized { declared: d }) => {
                prop_assert!(declared > MAX_FRAME_LEN);
                prop_assert_eq!(d, declared);
            }
            Err(ProtoError::Truncated) => {
                prop_assert!(declared <= MAX_FRAME_LEN);
                prop_assert!((declared as usize) > body.len());
            }
            Ok(Some(payload)) => prop_assert_eq!(payload.len(), declared as usize),
            other => prop_assert!(false, "unexpected outcome (ok={})", other.is_ok()),
        }
    }

    /// Flipping any single byte of a valid query frame payload never
    /// panics the decoder: it either still decodes (the flip hit a value
    /// byte) or fails with a typed error (the flip hit structure).
    #[test]
    fn bit_flipped_payloads_never_panic(
        pos in 0usize..1000,
        flip in 1u8..=255,
        n_peaks in 0usize..8,
    ) {
        let peaks = (0..n_peaks).map(|i| (100.0 + i as f64, 1.0f32)).collect();
        let mut payload = Request::Query {
            req_id: 7,
            full_scan: false,
            tolerance: Some(2.5),
            top_k: Some(5),
            scan: 3,
            precursor_mz: 500.25,
            charge: 2,
            peaks,
        }
        .encode();
        let pos = pos % payload.len();
        payload[pos] ^= flip;
        let _ = Request::decode(&payload); // must simply not panic
    }
}

/// A zero-length frame is structurally invalid (every payload starts with
/// a kind byte).
#[test]
fn zero_length_frame_rejected() {
    let wire = 0u32.to_le_bytes();
    assert!(matches!(
        read_frame(&mut wire.as_slice()),
        Err(ProtoError::Malformed(_))
    ));
}

/// A query frame whose peak count disagrees with its actual payload size
/// is rejected before any peak allocation happens.
#[test]
fn forged_peak_count_is_malformed() {
    let mut payload = Request::Query {
        req_id: 1,
        full_scan: false,
        tolerance: None,
        top_k: None,
        scan: 1,
        precursor_mz: 400.0,
        charge: 2,
        peaks: vec![(100.0, 1.0)],
    }
    .encode();
    // The peak-count field sits 12 bytes (one peak) before the end.
    let count_at = payload.len() - 12 - 4;
    payload[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Request::decode(&payload),
        Err(ProtoError::Malformed(_))
    ));
}

/// Unknown kind bytes are a distinct, clean error carrying the kind.
#[test]
fn unknown_kinds_reported() {
    for kind in [0x00u8, 0x42, 0x7F, 0xFF] {
        let payload = [kind, 1, 2, 3];
        assert!(
            matches!(Request::decode(&payload), Err(ProtoError::UnknownKind(k)) if k == kind),
            "kind {kind:#x}"
        );
        assert!(
            matches!(Response::decode(&payload), Err(ProtoError::UnknownKind(k)) if k == kind),
            "kind {kind:#x}"
        );
    }
}

/// The error-code constants are part of the wire contract; pin the ones
/// clients branch on.
#[test]
fn error_codes_are_stable() {
    assert_eq!(CODE_BAD_REQUEST, 4);
    assert_eq!(PROTOCOL_VERSION, 1);
    assert_eq!(MAX_FRAME_LEN, 16 * 1024 * 1024);
}
