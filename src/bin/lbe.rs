//! `lbe` — the command-line front end.
//!
//! ```text
//! lbe synth-proteome --out prot.fasta --proteins 200
//! lbe digest         --in prot.fasta --out peptides.fasta
//! lbe cluster-db     --in peptides.fasta --out clustered.fasta
//! lbe synth-queries  --db peptides.fasta --out queries.ms2 --n 500
//! lbe index          --db clustered.fasta --out index.slm --mods paper
//! lbe search         --index index.slm --queries queries.ms2 --out psms.tsv
//! lbe simulate       --db peptides.fasta --queries queries.ms2 --ranks 16 --policy cyclic
//! ```
//!
//! Run `lbe help` for the full reference.

use lbe::cli::{dispatch, Args};

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = dispatch(&args, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
