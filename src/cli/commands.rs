//! CLI subcommand implementations.
//!
//! Each command is a function from parsed [`Args`] to a `Result`, writing
//! human output to the supplied writer — so commands are unit-testable
//! without spawning processes.

use crate::cli::args::{ArgError, Args};
use lbe_bio::digest::DigestParams;
use lbe_bio::fasta::{write_fasta_path, Protein};
use lbe_bio::mods::ModSpec;
use lbe_bio::peptide::PeptideDb;
use lbe_bio::synthetic::{SyntheticProteome, SyntheticProteomeParams};
use lbe_cluster::{
    Cluster, ClusterConfig, CommCostModel, Communicator, Hostfile, TcpConfig, TcpTransport,
};
use lbe_core::engine::{run_distributed_search, EngineConfig};
use lbe_core::grouping::{group_peptides, GroupingCriterion, GroupingParams};
use lbe_core::ingest::{load_peptide_db, load_proteome_digested, load_queries, IngestStats};
use lbe_core::partition::PartitionPolicy;
use lbe_core::serve::proto::{self, Request, Response};
use lbe_core::serve::{serve_stdin, ResidentEngine, ServeConfig, Server};
use lbe_core::{
    cluster_build_rank, cluster_search_rank, cluster_search_rank_supervised, write_shards,
};
use lbe_index::lifecycle::chunked_container_stats;
use lbe_index::{ChunkedIndex, GenerationStore, Psm, QueryOptions, ScanMode, SlmConfig};
use lbe_spectra::mgf::write_mgf;
use lbe_spectra::ms2::write_ms2_path;
use lbe_spectra::mzml::write_mzml_path;
use lbe_spectra::preprocess::PreprocessParams;
use lbe_spectra::spectrum::Spectrum;
use lbe_spectra::synthetic::{SyntheticDataset, SyntheticDatasetParams};
use std::io::Write;

/// Any command failure (argument, I/O, or data error).
pub type CmdError = Box<dyn std::error::Error>;

/// Dispatches a parsed command, writing output to `out`.
pub fn dispatch<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    match args.command.as_str() {
        "synth-proteome" => synth_proteome(args, out),
        "digest" => digest(args, out),
        "cluster-db" => cluster_db(args, out),
        "synth-queries" => synth_queries(args, out),
        "index" => index_cmd(args, out),
        "search" => search(args, out),
        "serve" => serve(args, out),
        "query" => query_cmd(args, out),
        "simulate" => simulate(args, out),
        "cluster" => cluster_cmd(args, out),
        "help" | "" => {
            write!(out, "{}", usage())?;
            Ok(())
        }
        other => Err(Box::new(ArgError(format!(
            "unknown command {other:?}; run `lbe help`"
        )))),
    }
}

/// The top-level usage text.
pub fn usage() -> String {
    "\
lbe — LBE distributed peptide search (IPDPSW'19 reproduction)

USAGE: lbe <command> [--option value ...]

COMMANDS:
  synth-proteome  --out p.fasta [--proteins 200] [--seed 42]
                  generate a synthetic family-rich proteome
  digest          --in p.fasta --out peptides.fasta
                  [--missed-cleavages 2] [--min-len 6] [--max-len 40]
                  tryptic in-silico digestion + duplicate removal
  cluster-db      --in peptides.fasta --out clustered.fasta
                  [--criterion 1|2] [--d 2] [--d-prime 0.86] [--gsize 20]
                  Algorithm 1: sort + group, emit the clustered database
  synth-queries   --db peptides.fasta --out q.ms2 [--n 100] [--seed 7]
                  [--mods none|oxidation|paper] [--format ms2|mzml|mgf]
                  generate query spectra with ground truth in the MS2 scan
  index           --db peptides.fasta --out index.lbe [--digest]
                  [--mods none|oxidation|paper] [--chunk-size 50000]
                  build a mass-chunked SLM fragment-ion index and write a
                  v2 (LBECHK2) container; --digest accepts a raw proteome
                  FASTA and streams it through tryptic digestion first
  index init      --db peptides.fasta --out DIR [--digest]
                  [--mods none|oxidation|paper] [--chunk-size 50000]
                  create a generation store: a directory of
                  content-addressed (and, when smaller, compressed) chunk
                  blobs under an LBECHK3 manifest; `search` and `serve`
                  accept the directory anywhere they accept an index file
  index append    --index DIR --db delta.fasta [--digest]
                  digest only the new peptides (duplicates vs the stored
                  set are skipped) into append-only delta chunks; config,
                  modspec and chunk size come from the store's manifest
  index compact   --index DIR
                  merge base + delta chunks into one fresh mass-sorted
                  generation; search output is byte-identical to a
                  from-scratch rebuild, and unchanged blobs are reused by
                  content hash
  index gc        --index DIR
                  drop tombstoned records, delete unreferenced chunk
                  blobs and superseded manifests
  index stats     --index DIR|index.lbe
                  per-chunk inventory (content hash, generation,
                  live/tombstone, compression, raw vs stored bytes, mass
                  range) plus store totals; works on generation store
                  directories and plain LBECHK2 files
  search          --index index.lbe --queries q.{ms2|mgf|mzML} --out results.tsv
                  [--top-k 10] [--max-resident-chunks 0] [--csv] [--full-scan]
                  search an index (chunked v2 container, or a single-index
                  LBESLM1/LBESLM2 file), write a TSV (or CSV) of PSMs;
                  queries may be MS2, MGF, or mzML (autodetected; mzML MS1
                  survey scans are skipped and counted, msconvert 32/64-bit
                  uncompressed arrays supported); --max-resident-chunks
                  N > 0 caps how many chunks are held in memory (0 = all);
                  --full-scan disables the banded precursor-filtered
                  kernel (identical PSMs, more postings scanned — A/B aid)
  serve           --index index.lbe [--addr 127.0.0.1:0] [--stdin]
                  [--threads 4] [--max-resident-chunks 0]
                  [--max-inflight 256] [--max-wave 64]
                  [--per-conn-inflight 64] [--wave-deadline-ms 0]
                  [--idle-timeout-s 0]
                  long-lived query daemon: opens the index once, answers
                  length-prefixed query frames over TCP (prints a
                  parseable `listening on HOST:PORT` line) or, with
                  --stdin, over stdin/stdout for scripting; shuts down
                  cleanly on a shutdown frame (or stdin EOF);
                  --wave-deadline-ms N > 0 enables degraded mode: queries
                  not started within N ms of their wave are answered
                  immediately with a flagged partial result;
                  --idle-timeout-s N > 0 reaps connections idle that long
                  with a clean Bye frame
  query           --addr HOST:PORT [--queries q.{ms2|mgf|mzML} --out r.tsv]
                  [--top-k 10] [--csv] [--full-scan] [--tolerance DA]
                  [--shutdown]
                  client for `serve`: streams the query file to a running
                  daemon and writes the same report `search` would
                  (byte-identical for identical inputs); --tolerance
                  overrides the index's precursor window per request;
                  --shutdown asks the daemon to exit (alone or after the
                  queries); degraded (partial) results from a server in
                  degraded mode are counted and warned about
  simulate        --db peptides.fasta --queries q.{ms2|mgf|mzML}
                  [--out report.txt] [--ranks 16]
                  [--policy chunk|cyclic|random]
                  [--mods none|oxidation|paper] [--threads-per-rank 1]
                  [--spill-dir DIR] [--stream-db] [--digest] [--csv]
                  [--full-scan]
                  run the distributed engine, report times and imbalance;
                  --out writes the report to a file (created only after a
                  successful run) instead of stdout,
                  --spill-dir stores each rank's index on disk (v2) instead
                  of holding every partition in memory, --stream-db makes
                  each rank stream its peptide partition from the --db file
                  (no per-rank copy of the whole database), --digest accepts
                  a raw proteome FASTA, --csv emits the report as one
                  machine-readable CSV row
  cluster         build|search --db peptides.fasta [--digest]
                  [--mods none|oxidation|paper] [--policy chunk|cyclic|random]
                  [--seed 7] [--gsize 20] [--threads-per-rank 1]
                  backend (exactly one):
                    --sim [--ranks 4]          in-process threaded simulator
                    --hostfile H --rank R      this process is rank R of a
                                               real TCP cluster (one line
                                               per rank: `host:port` or
                                               `rank host:port`; --ranks
                                               cross-checks the file)
                    --launch [--ranks 4]       spawn N local rank processes
                                               over loopback TCP (testing)
                  cluster search: --queries q.{ms2|mgf|mzML} --out results.tsv
                    [--top-k 10] [--csv] [--full-scan] [--bench-out b.json]
                    [--timeout-s 60] [--supervise] [--fault-plan SPEC]
                    distributed batch search; rank 0 writes the same report
                    `search` would, --bench-out records measured per-rank
                    times and load imbalance as JSON (wall-clock on TCP,
                    virtual seconds under --sim); --supervise arms
                    rank-failure recovery: a worker that dies mid-run is
                    detected, its query share is re-executed on rank 0, and
                    results stay byte-identical to a failure-free run (a
                    `recovery:` line reports ranks lost); --fault-plan
                    injects deterministic faults for testing (e.g.
                    'rank=2;die=3' kills rank 2 at its 3rd transport op;
                    see the lbe-cluster fault docs; real transports only)
                  cluster build: --out DIR [--timeout-s 60]
                    distributed index build; every rank builds its
                    LBE-scattered partition locally and ships it to rank 0
                    as a v2 container shard; rank 0 writes
                    DIR/shard-NNNN.slm2 + DIR/manifest.tsv (byte-identical
                    across backends)
  help            this text
"
    .to_string()
}

fn parse_mods(args: &Args) -> Result<ModSpec, CmdError> {
    match args.get("mods").unwrap_or("none") {
        "none" => Ok(ModSpec::none()),
        "oxidation" => Ok(ModSpec::oxidation_only()),
        "paper" => Ok(ModSpec::paper_default()),
        other => Err(Box::new(ArgError(format!(
            "unknown --mods {other:?} (none|oxidation|paper)"
        )))),
    }
}

fn parse_policy(args: &Args) -> Result<PartitionPolicy, CmdError> {
    let seed = args.get_parsed::<u64>("seed", 7)?;
    match args.get("policy").unwrap_or("cyclic") {
        "chunk" => Ok(PartitionPolicy::Chunk),
        "cyclic" => Ok(PartitionPolicy::Cyclic),
        "random" => Ok(PartitionPolicy::Random { seed }),
        other => Err(Box::new(ArgError(format!(
            "unknown --policy {other:?} (chunk|cyclic|random)"
        )))),
    }
}

/// Streams query spectra of any supported format — `.ms2`/`.mgf`/`.mzML`
/// by extension, content-sniffed otherwise — preprocessing each spectrum
/// as it is read. Prints a note when non-MS2 (survey) scans were skipped.
fn read_queries<W: Write>(
    path: &str,
    out: &mut W,
) -> Result<(Vec<Spectrum>, IngestStats), CmdError> {
    let (queries, stats) = load_queries(path, &PreprocessParams::default())?;
    if stats.skipped_non_ms2 > 0 {
        writeln!(
            out,
            "note: skipped {} non-MS2 spectra in {path} ({} input)",
            stats.skipped_non_ms2, stats.format
        )?;
    }
    Ok((queries, stats))
}

/// Streams a peptide-per-record FASTA into a [`PeptideDb`]; with
/// `--digest`, treats the file as a raw proteome and streams it through
/// tryptic digestion + duplicate removal first (paper-default settings).
fn read_db<W: Write>(args: &Args, path: &str, out: &mut W) -> Result<PeptideDb, CmdError> {
    if args.has("digest") {
        let (db, stats) = load_proteome_digested(path, &DigestParams::default())?;
        writeln!(
            out,
            "digested {path} -> {} unique peptides ({:.1}% redundant)",
            db.len(),
            stats.redundancy() * 100.0
        )?;
        Ok(db)
    } else {
        Ok(load_peptide_db(path)?)
    }
}

fn write_peptide_fasta(
    path: &str,
    db: &PeptideDb,
    header: impl Fn(u32) -> String,
) -> Result<(), CmdError> {
    let records: Vec<Protein> = db
        .iter()
        .map(|(id, p)| Protein::new(header(id), p.sequence()))
        .collect();
    write_fasta_path(path, &records)?;
    Ok(())
}

fn synth_proteome<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["out", "proteins", "seed", "mean-len", "family-fraction"])?;
    let path = args.require("out")?;
    let params = SyntheticProteomeParams {
        num_proteins: args.get_parsed("proteins", 200)?,
        mean_protein_len: args.get_parsed("mean-len", 450)?,
        family_fraction: args.get_parsed("family-fraction", 0.4)?,
        ..Default::default()
    };
    let seed = args.get_parsed("seed", 42u64)?;
    let proteome = SyntheticProteome::generate(params, seed);
    write_fasta_path(path, &proteome.proteins)?;
    writeln!(
        out,
        "wrote {} proteins ({} residues) to {path}",
        proteome.proteins.len(),
        proteome.total_residues()
    )?;
    Ok(())
}

fn digest<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["in", "out", "missed-cleavages", "min-len", "max-len"])?;
    let input = args.require("in")?;
    let output = args.require("out")?;
    let params = DigestParams {
        max_missed_cleavages: args.get_parsed("missed-cleavages", 2u8)?,
        min_len: args.get_parsed("min-len", 6usize)?,
        max_len: args.get_parsed("max-len", 40usize)?,
        ..Default::default()
    };
    // Stream the proteome: one protein resident at a time, counted as
    // records flow through the digest.
    let mut proteins = 0usize;
    let counted = lbe_bio::fasta::FastaReader::open(input)?.inspect(|r| {
        if r.is_ok() {
            proteins += 1;
        }
    });
    let digested: Vec<lbe_bio::peptide::Peptide> =
        lbe_bio::digest::digest_stream(counted, &params)?.collect::<Result<_, _>>()?;
    let before = digested.len();
    let (db, stats) = lbe_bio::dedup::dedup_peptides(PeptideDb::from_vec(digested));
    write_peptide_fasta(output, &db, |id| format!("pep{:07}", id))?;
    writeln!(
        out,
        "digested {proteins} proteins -> {before} peptides -> {} unique ({:.1}% redundant), wrote {output}",
        db.len(),
        stats.redundancy() * 100.0
    )?;
    Ok(())
}

fn cluster_db<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["in", "out", "criterion", "d", "d-prime", "gsize"])?;
    let input = args.require("in")?;
    let output = args.require("out")?;
    let criterion = match args.get_parsed("criterion", 2u8)? {
        1 => GroupingCriterion::Absolute {
            d: args.get_parsed("d", 2usize)?,
        },
        2 => GroupingCriterion::Normalized {
            d_prime: args.get_parsed("d-prime", 0.86f64)?,
        },
        other => {
            return Err(Box::new(ArgError(format!(
                "--criterion must be 1 or 2, got {other}"
            ))))
        }
    };
    let params = GroupingParams {
        criterion,
        gsize: args.get_parsed("gsize", 20usize)?,
    };
    let db = load_peptide_db(input)?;
    let grouping = group_peptides(&db, &params);
    // Emit the clustered database: groups concatenated in grouped order
    // (§III-C.2), group id recorded in each header.
    let records: Vec<Protein> = grouping
        .iter_groups()
        .enumerate()
        .flat_map(|(gi, group)| group.iter().map(move |&pid| (gi, pid)))
        .map(|(gi, pid)| {
            Protein::new(
                format!("group{:06}|pep{:07}", gi, pid),
                db.get(pid).sequence(),
            )
        })
        .collect();
    write_fasta_path(output, &records)?;
    writeln!(
        out,
        "grouped {} peptides into {} groups (mean size {:.2}), wrote {output}",
        grouping.num_peptides(),
        grouping.num_groups(),
        grouping.mean_group_size()
    )?;
    Ok(())
}

fn synth_queries<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["db", "out", "n", "seed", "mods", "skew", "format"])?;
    let db_path = args.require("db")?;
    let output = args.require("out")?;
    let db = load_peptide_db(db_path)?;
    let modspec = parse_mods(args)?;
    let params = SyntheticDatasetParams {
        num_spectra: args.get_parsed("n", 100usize)?,
        abundance_skew: args.get_parsed("skew", 0.0f64)?,
        ..Default::default()
    };
    let seed = args.get_parsed("seed", 7u64)?;
    let dataset = SyntheticDataset::generate(&db, &modspec, &params, seed);
    match args.get("format").unwrap_or("ms2") {
        "ms2" => write_ms2_path(output, &dataset.spectra)?,
        "mzml" => write_mzml_path(output, &dataset.spectra)?,
        "mgf" => write_mgf(
            std::fs::File::create(output).map_err(lbe_bio::error::BioError::Io)?,
            &dataset.spectra,
        )?,
        other => {
            return Err(Box::new(ArgError(format!(
                "unknown --format {other:?} (ms2|mzml|mgf)"
            ))))
        }
    }
    writeln!(
        out,
        "wrote {} query spectra to {output} (ground truth: scan i <- peptide {{truth[i]}})",
        dataset.len()
    )?;
    Ok(())
}

fn index_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    let sub = args.positional.first().map(String::as_str);
    if sub.is_some() && args.positional.len() != 1 {
        return Err(Box::new(ArgError(
            "usage: lbe index [init|append|compact|gc|stats] --option value ...".into(),
        )));
    }
    match sub {
        None => index_build(args, out),
        Some("init") => index_init(args, out),
        Some("append") => index_append(args, out),
        Some("compact") => index_compact(args, out),
        Some("gc") => index_gc(args, out),
        Some("stats") => index_stats(args, out),
        Some(other) => Err(Box::new(ArgError(format!(
            "unknown index subcommand {other:?} (init|append|compact|gc|stats, \
             or no subcommand for a single-file LBECHK2 build)"
        )))),
    }
}

/// The legacy single-file build: `lbe index --db ... --out index.lbe`.
fn index_build<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["db", "out", "mods", "chunk-size", "digest"])?;
    let db_path = args.require("db")?;
    let output = args.require("out")?;
    let chunk_size = args.get_parsed("chunk-size", 50_000usize)?;
    if chunk_size == 0 {
        return Err(Box::new(ArgError("--chunk-size must be at least 1".into())));
    }
    let db = read_db(args, db_path, out)?;
    let modspec = parse_mods(args)?;
    let index = ChunkedIndex::build(&db, SlmConfig::default(), modspec, chunk_size);
    index.write_path(output)?;
    writeln!(
        out,
        "indexed {} peptides -> {} spectra in {} chunk(s) ({:.2} MB), wrote {output}",
        db.len(),
        index.num_spectra(),
        index.num_chunks(),
        index.heap_bytes() as f64 / 1e6
    )?;
    Ok(())
}

/// `lbe index init`: creates a generation-store directory (LBECHK3).
fn index_init<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["db", "out", "mods", "chunk-size", "digest"])?;
    let db_path = args.require("db")?;
    let output = args.require("out")?;
    let chunk_size = args.get_parsed("chunk-size", 50_000usize)?;
    let db = read_db(args, db_path, out)?;
    let modspec = parse_mods(args)?;
    let (store, o) = GenerationStore::init(output, &db, SlmConfig::default(), modspec, chunk_size)?;
    let stats = store.stats()?;
    writeln!(
        out,
        "initialized generation store {output}: {} peptides in {} chunk(s) \
         (generation {}, {} stored of {} logical bytes)",
        o.total_peptides, o.new_chunks, o.generation, stats.stored_bytes, stats.logical_bytes
    )?;
    Ok(())
}

/// `lbe index append`: digests only the new peptides into delta chunks.
fn index_append<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["index", "db", "digest"])?;
    let index_dir = args.require("index")?;
    let db_path = args.require("db")?;
    let store = GenerationStore::open(index_dir)?;
    let delta = read_db(args, db_path, out)?;
    let o = store.append(&delta)?;
    writeln!(
        out,
        "appended {} new peptides ({} duplicates skipped) as {} delta chunk(s) \
         in generation {}; store now holds {} peptides",
        o.peptides_added, o.duplicates_skipped, o.new_chunks, o.generation, o.total_peptides
    )?;
    Ok(())
}

/// `lbe index compact`: rewrites the store as one fresh generation,
/// byte-identical in search output to a from-scratch rebuild.
fn index_compact<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["index"])?;
    let index_dir = args.require("index")?;
    let store = GenerationStore::open(index_dir)?;
    let o = store.compact()?;
    writeln!(
        out,
        "compacted {} chunk(s) into {} (generation {}, {} blob(s) reused by content hash)",
        o.chunks_before, o.chunks_after, o.generation, o.blobs_reused
    )?;
    Ok(())
}

/// `lbe index gc`: deletes unreferenced blobs and superseded manifests.
fn index_gc<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["index"])?;
    let index_dir = args.require("index")?;
    let store = GenerationStore::open(index_dir)?;
    let o = store.gc()?;
    writeln!(
        out,
        "gc: deleted {} blob(s) ({} bytes) and {} old manifest(s), dropped {} tombstone(s)",
        o.blobs_deleted, o.bytes_reclaimed, o.manifests_deleted, o.tombstones_dropped
    )?;
    Ok(())
}

/// `lbe index stats`: per-chunk inventory of a generation store directory
/// or a plain single-file LBECHK2 container.
fn index_stats<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&["index"])?;
    let index_path = args.require("index")?;
    let stats = if std::path::Path::new(index_path).is_dir() {
        GenerationStore::open(index_path)?.stats()?
    } else {
        chunked_container_stats(index_path)?
    };
    writeln!(
        out,
        "{:>5}  {:<16}  {:>3}  {:<4}  {:<4}  {:>12}  {:>12}  mass range",
        "chunk", "hash", "gen", "live", "comp", "raw", "stored"
    )?;
    for (i, r) in stats.records.iter().enumerate() {
        writeln!(
            out,
            "{i:>5}  {:016x}  {:>3}  {:<4}  {:<4}  {:>12}  {:>12}  [{}, {}]",
            r.hash,
            r.generation,
            if r.tombstone { "tomb" } else { "live" },
            if r.compressed { "yes" } else { "no" },
            r.raw_len,
            r.stored_len,
            r.lo_mass,
            r.hi_mass
        )?;
    }
    let live = stats.records.iter().filter(|r| !r.tombstone).count();
    writeln!(
        out,
        "{} peptides in {} live chunk(s) (+{} tombstone(s)); \
         {} bytes stored of {} logical (ratio {:.3}); next generation {}",
        stats.num_peptides,
        live,
        stats.records.len() - live,
        stats.stored_bytes,
        stats.logical_bytes,
        stats.stored_bytes as f64 / stats.logical_bytes.max(1) as f64,
        stats.next_generation
    )?;
    Ok(())
}

/// Writes the PSM table of one query to the results file.
fn write_result_rows<W: Write>(
    sink: &mut W,
    scan: u32,
    psms: &[Psm],
    top_k: usize,
    sep: char,
) -> Result<usize, CmdError> {
    let mut rows = 0;
    for (rank, p) in psms.iter().take(top_k).enumerate() {
        writeln!(
            sink,
            "{scan}{sep}{}{sep}{}{sep}{}{sep}{}{sep}{:.4}",
            rank + 1,
            p.peptide,
            p.modform,
            p.shared_peaks,
            p.score
        )?;
        rows += 1;
    }
    Ok(rows)
}

fn search<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&[
        "index",
        "queries",
        "out",
        "top-k",
        "max-resident-chunks",
        "csv",
        "full-scan",
    ])?;
    let index_path = args.require("index")?;
    let queries_path = args.require("queries")?;
    let output = args.require("out")?;
    let csv = args.has("csv");
    let sep = if csv { ',' } else { '\t' };
    let mode = if args.has("full-scan") {
        ScanMode::FullScan
    } else {
        ScanMode::Auto
    };
    // 0 = no budget (all chunks resident); N > 0 caps residency.
    let max_resident = match args.get_parsed("max-resident-chunks", 0usize)? {
        0 => usize::MAX,
        n => n,
    };
    let (queries, _stats) = read_queries(queries_path, out)?;

    // The index's own top_k is fixed at build time; the CLI flag clamps
    // the emitted rows.
    let top_k = args.get_parsed("top-k", 10usize)?;

    // Open the index BEFORE creating/truncating the results file: a typo'd
    // --index must not destroy a previous run's output. The engine always
    // runs the full validation scan — index files handed to it are
    // untrusted input.
    let engine = ResidentEngine::open(index_path, max_resident)?;

    let mut sink = std::io::BufWriter::new(std::fs::File::create(output)?);
    writeln!(sink, "{}", result_header(sep))?;

    let query_opts = QueryOptions::from_mode(mode);
    let mut total_psms = 0usize;
    for q in &queries {
        let r = engine.search_one(q, &query_opts)?;
        total_psms += write_result_rows(&mut sink, q.scan, &r.psms, top_k, sep)?;
    }
    sink.flush()?;
    let backend = engine.backend_summary();
    match engine.num_indexed() {
        Some(n) => writeln!(
            out,
            "searched {} spectra against {n} indexed spectra ({backend}), wrote {total_psms} PSMs to {output}",
            queries.len(),
        )?,
        None => writeln!(
            out,
            "searched {} spectra ({backend}), wrote {total_psms} PSMs to {output}",
            queries.len(),
        )?,
    }
    Ok(())
}

/// The report header row (`search`, `query`, and the goldens share it).
fn result_header(sep: char) -> String {
    [
        "scan",
        "rank",
        "peptide",
        "modform",
        "shared_peaks",
        "score",
    ]
    .join(&sep.to_string())
}

fn serve<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&[
        "index",
        "addr",
        "stdin",
        "threads",
        "max-resident-chunks",
        "max-inflight",
        "max-wave",
        "per-conn-inflight",
        "wave-deadline-ms",
        "idle-timeout-s",
    ])?;
    let index_path = args.require("index")?;
    let max_resident = match args.get_parsed("max-resident-chunks", 0usize)? {
        0 => usize::MAX,
        n => n,
    };
    let cfg = ServeConfig {
        threads: args.get_parsed("threads", 4usize)?.max(1),
        max_resident_chunks: max_resident,
        max_inflight: args.get_parsed("max-inflight", 256usize)?.max(1),
        max_wave: args.get_parsed("max-wave", 64usize)?.max(1),
        per_conn_inflight: args.get_parsed("per-conn-inflight", 64usize)?.max(1),
        wave_deadline: match args.get_parsed("wave-deadline-ms", 0u64)? {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        },
        idle_timeout: match args.get_parsed("idle-timeout-s", 0u64)? {
            0 => None,
            s => Some(std::time::Duration::from_secs(s)),
        },
    };
    // Open (and fully validate) the index before any transport exists: a
    // bad --index is an ordinary CLI error, never a half-started server.
    let engine = ResidentEngine::open(index_path, cfg.max_resident_chunks)?;

    if args.has("stdin") {
        // Frames go over real stdin/stdout; human chatter must not
        // contaminate the binary response stream, so it goes to stderr.
        eprintln!(
            "serving {index_path} over stdin/stdout (EOF or a shutdown frame ends the session)"
        );
        let stats = serve_stdin(
            &engine,
            &mut std::io::stdin().lock(),
            &mut std::io::stdout().lock(),
        )?;
        eprintln!(
            "served {} requests, {} responses ({} protocol errors, {} degraded)",
            stats.requests, stats.responses, stats.protocol_errors, stats.degraded
        );
        return Ok(());
    }

    let addr = match args.get("addr") {
        Some("") => return Err(Box::new(ArgError("--addr needs host:port".into()))),
        Some(a) => a,
        None => "127.0.0.1:0",
    };
    let server = Server::bind(engine, addr, cfg)?;
    // Parseable banner: scripts (and the CI smoke test) scrape the bound
    // address from this line, so flush it before blocking in run().
    writeln!(out, "listening on {}", server.local_addr())?;
    out.flush()?;
    let stats = server.run()?;
    writeln!(
        out,
        "served {} connections, {} requests, {} responses ({} protocol errors, {} degraded)",
        stats.connections, stats.requests, stats.responses, stats.protocol_errors, stats.degraded
    )?;
    Ok(())
}

/// Reads raw (unpreprocessed) query spectra for the wire: the *server*
/// preprocesses, so file-fed and socket-fed spectra take the identical
/// pipeline. Prints the same skipped-MS1 note as [`read_queries`].
fn read_raw_queries<W: Write>(path: &str, out: &mut W) -> Result<Vec<Spectrum>, CmdError> {
    let mut reader = lbe_spectra::reader::SpectrumReader::open(path)?;
    let mut spectra = Vec::new();
    for s in &mut reader {
        spectra.push(s?);
    }
    if reader.skipped_non_ms2() > 0 {
        writeln!(
            out,
            "note: skipped {} non-MS2 spectra in {path} ({} input)",
            reader.skipped_non_ms2(),
            reader.format()
        )?;
    }
    Ok(spectra)
}

fn query_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&[
        "addr",
        "queries",
        "out",
        "top-k",
        "csv",
        "full-scan",
        "tolerance",
        "shutdown",
    ])?;
    let addr = args.require("addr")?;
    let shutdown = args.has("shutdown");
    let queries_path = match args.get("queries") {
        Some("") => return Err(Box::new(ArgError("--queries needs a file path".into()))),
        other => other,
    };
    if queries_path.is_none() && !shutdown {
        return Err(Box::new(ArgError(
            "query needs --queries (and --out), or --shutdown".into(),
        )));
    }
    let csv = args.has("csv");
    let sep = if csv { ',' } else { '\t' };
    let top_k = args.get_parsed("top-k", 10usize)?;
    let full_scan = args.has("full-scan");
    let tolerance = match args.get("tolerance") {
        None => None,
        Some(s) => Some(
            s.parse::<f64>()
                .map_err(|_| ArgError(format!("--tolerance {s:?} is not a number (Daltons)")))?,
        ),
    };

    // Read queries and connect BEFORE touching --out: a dead server or a
    // typo'd queries file must not destroy a previous run's results.
    let mut sent = Vec::new();
    let output = if let Some(qp) = queries_path {
        let output = args.require("out")?;
        sent = read_raw_queries(qp, out)?;
        Some(output)
    } else {
        None
    };
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| ArgError(format!("cannot connect to {addr}: {e}")))?;
    let mut rd = std::io::BufReader::new(stream.try_clone()?);

    let scans: Vec<u32> = sent.iter().map(|s| s.scan).collect();
    let mut results: Vec<Option<Vec<proto::WirePsm>>> = vec![None; sent.len()];
    let mut degraded = 0usize;
    if !sent.is_empty() {
        // Requests go out on a separate thread while this one drains
        // responses: the server caps per-connection in-flight queries, so
        // a one-threaded client pushing a large batch without reading
        // would deadlock against its own backlog.
        let send_stream = stream.try_clone()?;
        let sender = std::thread::spawn(move || -> std::io::Result<()> {
            let mut w = std::io::BufWriter::new(send_stream);
            for (i, s) in sent.iter().enumerate() {
                let request = Request::Query {
                    req_id: i as u64,
                    full_scan,
                    tolerance,
                    top_k: None, // emitted rows are clamped client-side
                    scan: s.scan,
                    precursor_mz: s.precursor_mz,
                    charge: s.charge,
                    peaks: s.peaks.iter().map(|p| (p.mz, p.intensity)).collect(),
                };
                proto::write_frame(&mut w, &request.encode())?;
            }
            w.flush()
        });
        let mut received = 0usize;
        while received < results.len() {
            let payload = proto::read_frame(&mut rd)?
                .ok_or_else(|| ArgError("server closed the connection early".into()))?;
            match Response::decode(&payload)? {
                Response::Result {
                    req_id,
                    psms,
                    flags,
                } => {
                    if flags & proto::RESULT_FLAG_DEGRADED != 0 {
                        degraded += 1;
                    }
                    let slot = results
                        .get_mut(req_id as usize)
                        .ok_or_else(|| ArgError(format!("unknown request id {req_id}")))?;
                    if slot.replace(psms).is_some() {
                        return Err(Box::new(ArgError(format!(
                            "duplicate response for request id {req_id}"
                        ))));
                    }
                    received += 1;
                }
                Response::Error {
                    req_id,
                    code,
                    message,
                } => {
                    return Err(Box::new(ArgError(format!(
                        "server error (code {code}) for request {req_id}: {message}"
                    ))));
                }
                other => {
                    return Err(Box::new(ArgError(format!(
                        "unexpected response frame: {other:?}"
                    ))));
                }
            }
        }
        sender
            .join()
            .map_err(|_| ArgError("request sender thread panicked".into()))??;
    }

    if shutdown {
        proto::write_frame(
            &mut stream,
            &Request::Shutdown { req_id: u64::MAX }.encode(),
        )?;
        let payload = proto::read_frame(&mut rd)?
            .ok_or_else(|| ArgError("server closed before acknowledging shutdown".into()))?;
        match Response::decode(&payload)? {
            Response::Bye { .. } => writeln!(out, "server at {addr} acknowledged shutdown")?,
            other => {
                return Err(Box::new(ArgError(format!(
                    "unexpected shutdown response: {other:?}"
                ))));
            }
        }
    }

    // Only now — every response in hand — is the results file created, so
    // a mid-run failure can never leave a truncated report behind.
    if let Some(output) = output {
        let mut sink = std::io::BufWriter::new(std::fs::File::create(output)?);
        writeln!(sink, "{}", result_header(sep))?;
        let mut total_psms = 0usize;
        for (scan, psms) in scans.iter().zip(&results) {
            let psms: Vec<Psm> = psms
                .as_ref()
                .expect("all responses received")
                .iter()
                .map(|&(peptide, modform, shared_peaks, score)| Psm {
                    entry: 0,
                    peptide,
                    modform,
                    shared_peaks,
                    score,
                })
                .collect();
            total_psms += write_result_rows(&mut sink, *scan, &psms, top_k, sep)?;
        }
        sink.flush()?;
        writeln!(
            out,
            "queried {} spectra against {addr}, wrote {total_psms} PSMs to {output}",
            scans.len(),
        )?;
        if degraded > 0 {
            writeln!(
                out,
                "warning: {degraded} of {} results are DEGRADED (partial — the \
                 server's wave deadline expired before they were searched)",
                scans.len(),
            )?;
        }
    }
    Ok(())
}

fn simulate<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    args.reject_unknown(&[
        "db",
        "queries",
        "out",
        "ranks",
        "policy",
        "seed",
        "mods",
        "threads-per-rank",
        "gsize",
        "cost-scale",
        "spill-dir",
        "stream-db",
        "digest",
        "csv",
        "full-scan",
    ])?;
    let db_path = args.require("db")?;
    let queries_path = args.require("queries")?;
    // Optional report file, validated up front but created only after a
    // successful run (see the write at the end).
    let report_path = match args.get("out") {
        Some("") => return Err(Box::new(ArgError("--out needs a file path".into()))),
        other => other,
    };
    let ranks = args.get_parsed("ranks", 16usize)?;
    let policy = parse_policy(args)?;
    if args.has("stream-db") && args.has("digest") {
        return Err(Box::new(ArgError(
            "--stream-db requires a peptide-per-record --db file and cannot \
             be combined with --digest (the digested ids have no on-disk \
             record alignment)"
                .into(),
        )));
    }
    // In --csv mode stdout is one machine-readable header + row; the
    // human-readable ingest notes (skipped-MS1 counts, --digest summary)
    // must not contaminate it.
    let mut discarded_notes = Vec::new();
    let mut notes: &mut dyn Write = if args.has("csv") {
        &mut discarded_notes
    } else {
        out
    };
    let db = read_db(args, db_path, &mut notes)?;
    let (queries, _stats) = read_queries(queries_path, &mut notes)?;

    let grouping = group_peptides(
        &db,
        &GroupingParams {
            criterion: GroupingCriterion::normalized_default(),
            gsize: args.get_parsed("gsize", 20usize)?,
        },
    );
    let mut cfg = EngineConfig::with_policy(policy);
    cfg.modspec = parse_mods(args)?;
    cfg.threads_per_rank = args.get_parsed("threads-per-rank", 1usize)?;
    cfg.cost = cfg
        .cost
        .scaled_for_index(args.get_parsed("cost-scale", 1.0f64)?);
    if args.has("full-scan") {
        cfg.scan_mode = ScanMode::FullScan;
    }
    cfg.spill_dir = match args.get("spill-dir") {
        Some("") => return Err(Box::new(ArgError("--spill-dir needs a directory".into()))),
        other => other.map(std::path::PathBuf::from),
    };
    // Validate the spill directory up front: an unwritable path must be an
    // ordinary CLI error here, not a panic from inside a rank thread.
    if let Some(dir) = &cfg.spill_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| ArgError(format!("--spill-dir {}: {e}", dir.display())))?;
        let probe = dir.join(".lbe-spill-probe");
        std::fs::write(&probe, b"").map_err(|e| {
            ArgError(format!(
                "--spill-dir {} is not writable: {e}",
                dir.display()
            ))
        })?;
        std::fs::remove_file(&probe).ok();
    }
    // --stream-db: ranks stream their peptide partition straight from the
    // --db file instead of cloning it out of the shared in-memory database.
    if args.has("stream-db") {
        cfg.stream_db_from = Some(std::path::PathBuf::from(db_path));
    }
    let report = run_distributed_search(&db, &grouping, &queries, &cfg, ranks);

    // With --out the report is buffered and hits the disk only after the
    // run succeeded — same open-before-truncate discipline as `search`:
    // a failed run must never destroy a previous report.
    let mut report_buf = Vec::new();
    {
        let sink: &mut dyn Write = if report_path.is_some() {
            &mut report_buf
        } else {
            out
        };
        if args.has("csv") {
            // One machine-readable row for the figure harnesses.
            writeln!(
                sink,
                "policy,ranks,peptides,indexed_spectra,queries,candidate_psms,\
                 query_time_s,execution_time_s,load_imbalance_pct,wasted_cpu_s"
            )?;
            writeln!(
                sink,
                "{policy},{ranks},{},{},{},{},{:.6},{:.6},{:.3},{:.6}",
                db.len(),
                report.index_spectra.iter().sum::<usize>(),
                queries.len(),
                report.total_candidates,
                report.query_time(),
                report.execution_time(),
                report.imbalance.load_imbalance_pct(),
                report.imbalance.wasted_cpu_time(ranks)
            )?;
        } else {
            writeln!(sink, "policy            : {policy}")?;
            writeln!(sink, "ranks             : {ranks}")?;
            writeln!(sink, "peptides          : {}", db.len())?;
            writeln!(
                sink,
                "indexed spectra   : {}",
                report.index_spectra.iter().sum::<usize>()
            )?;
            writeln!(sink, "queries           : {}", queries.len())?;
            writeln!(sink, "candidate PSMs    : {}", report.total_candidates)?;
            writeln!(sink, "query time (s)    : {:.4}", report.query_time())?;
            writeln!(sink, "execution time (s): {:.4}", report.execution_time())?;
            writeln!(
                sink,
                "load imbalance    : {:.1}%",
                report.imbalance.load_imbalance_pct()
            )?;
            writeln!(
                sink,
                "wasted CPU time   : {:.4}s",
                report.imbalance.wasted_cpu_time(ranks)
            )?;
        }
    }
    if let Some(path) = report_path {
        std::fs::write(path, &report_buf)?;
        writeln!(out, "wrote simulation report to {path}")?;
    }
    Ok(())
}

/// Which transport a `cluster` invocation runs on.
enum ClusterBackend {
    /// In-process threaded simulator (virtual time).
    Sim { ranks: usize },
    /// This process is one rank of a real TCP cluster.
    Tcp { hostfile: Hostfile, rank: usize },
    /// Parent process: spawn N local rank processes over loopback TCP.
    Launch { ranks: usize },
}

/// Resolves the backend flags (`--sim` / `--hostfile`+`--rank` / `--launch`)
/// — exactly one must be given. Hostfile problems (bad addresses, duplicate
/// ranks, `--ranks` mismatch) become ordinary CLI errors here, before any
/// socket is opened or input file read.
fn cluster_backend(args: &Args) -> Result<ClusterBackend, CmdError> {
    let picked = [args.has("sim"), args.has("hostfile"), args.has("launch")]
        .iter()
        .filter(|&&b| b)
        .count();
    if picked != 1 {
        return Err(Box::new(ArgError(
            "cluster needs exactly one backend: --sim, --hostfile H --rank R, \
             or --launch"
                .into(),
        )));
    }
    if args.has("sim") || args.has("launch") {
        if args.has("rank") {
            return Err(Box::new(ArgError(
                "--rank only makes sense with --hostfile".into(),
            )));
        }
        let ranks = args.get_parsed("ranks", 4usize)?;
        if ranks == 0 {
            return Err(Box::new(ArgError("--ranks must be at least 1".into())));
        }
        return Ok(if args.has("sim") {
            ClusterBackend::Sim { ranks }
        } else {
            ClusterBackend::Launch { ranks }
        });
    }
    let path = args.require("hostfile")?;
    let hostfile = Hostfile::load(std::path::Path::new(path))
        .map_err(|e| ArgError(format!("--hostfile {path}: {e}")))?;
    if args.has("ranks") {
        let expected = args.get_parsed("ranks", 0usize)?;
        hostfile
            .expect_ranks(expected)
            .map_err(|e| ArgError(format!("--hostfile {path}: {e}")))?;
    }
    let rank_s = args
        .require("rank")
        .map_err(|_| ArgError("--hostfile needs --rank R (this process's rank)".into()))?;
    let rank: usize = rank_s
        .parse()
        .map_err(|_| ArgError(format!("invalid value for --rank: {rank_s:?}")))?;
    if rank >= hostfile.ranks() {
        return Err(Box::new(ArgError(format!(
            "--rank {rank} out of range: hostfile names {} ranks",
            hostfile.ranks()
        ))));
    }
    Ok(ClusterBackend::Tcp { hostfile, rank })
}

fn cluster_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), CmdError> {
    let sub = args.positional.first().map(String::as_str).unwrap_or("");
    if !matches!(sub, "build" | "search") || args.positional.len() != 1 {
        return Err(Box::new(ArgError(
            "cluster needs a mode: `lbe cluster build ...` or \
             `lbe cluster search ...` (run `lbe help`)"
                .into(),
        )));
    }
    args.reject_unknown(&[
        "db",
        "digest",
        "mods",
        "policy",
        "seed",
        "gsize",
        "threads-per-rank",
        "sim",
        "hostfile",
        "rank",
        "ranks",
        "launch",
        "timeout-s",
        "queries",
        "out",
        "top-k",
        "csv",
        "full-scan",
        "bench-out",
        "supervise",
        "fault-plan",
    ])?;
    let backend = cluster_backend(args)?;
    let supervise = args.has("supervise");
    if supervise && sub != "search" {
        return Err(Box::new(ArgError(
            "--supervise applies to `cluster search` only".into(),
        )));
    }
    let fault_plan = match args.get("fault-plan") {
        None => None,
        Some(spec) => {
            if matches!(backend, ClusterBackend::Sim { .. }) {
                return Err(Box::new(ArgError(
                    "--fault-plan needs a real transport (--hostfile or --launch); \
                     the in-process simulator shares one address space with rank 0"
                        .into(),
                )));
            }
            Some(
                lbe_cluster::FaultPlan::parse(spec)
                    .map_err(|e| ArgError(format!("--fault-plan: {e}")))?,
            )
        }
    };

    // The launcher never loads any data itself — it only spawns the rank
    // processes (which re-parse this command line with --hostfile/--rank)
    // and waits for them.
    if let ClusterBackend::Launch { ranks } = backend {
        return launch_local_cluster(args, sub, ranks, out);
    }

    let db_path = args.require("db")?;
    args.require("out")?; // validated before any expensive work
    let timeout_s = args.get_parsed("timeout-s", 60.0f64)?;
    if !(timeout_s > 0.0 && timeout_s.is_finite()) {
        return Err(Box::new(ArgError(
            "--timeout-s must be a positive number of seconds".into(),
        )));
    }
    let timeout = std::time::Duration::from_secs_f64(timeout_s);

    let db = read_db(args, db_path, out)?;
    let grouping = group_peptides(
        &db,
        &GroupingParams {
            criterion: GroupingCriterion::normalized_default(),
            gsize: args.get_parsed("gsize", 20usize)?,
        },
    );
    let mut cfg = EngineConfig::with_policy(parse_policy(args)?);
    cfg.modspec = parse_mods(args)?;
    cfg.threads_per_rank = args.get_parsed("threads-per-rank", 1usize)?;
    if args.has("full-scan") {
        cfg.scan_mode = ScanMode::FullScan;
    }

    match (sub, backend) {
        ("search", ClusterBackend::Sim { ranks }) => {
            let (queries, _stats) = read_queries(args.require("queries")?, out)?;
            let outcome = Cluster::new(ClusterConfig::new(ranks)).run(|comm| {
                if supervise {
                    cluster_search_rank_supervised(comm, &db, &grouping, &queries, &cfg)
                        .unwrap_or_else(|e| panic!("{e}"))
                } else {
                    cluster_search_rank(comm, &db, &grouping, &queries, &cfg)
                        .unwrap_or_else(|e| panic!("{e}"))
                }
            });
            let report = outcome
                .results
                .into_iter()
                .next()
                .flatten()
                .expect("rank 0 returns the report");
            write_cluster_search_outputs(args, "sim", "virtual", &queries, db.len(), &report, out)
        }
        ("search", ClusterBackend::Tcp { hostfile, rank }) => {
            let (queries, _stats) = read_queries(args.require("queries")?, out)?;
            let mut comm =
                tcp_communicator(&hostfile, rank, timeout, supervise, fault_plan.as_ref())?;
            let report = if supervise {
                cluster_search_rank_supervised(&mut comm, &db, &grouping, &queries, &cfg)?
            } else {
                cluster_search_rank(&mut comm, &db, &grouping, &queries, &cfg)?
            };
            match report {
                Some(report) => write_cluster_search_outputs(
                    args,
                    "tcp",
                    "wall",
                    &queries,
                    db.len(),
                    &report,
                    out,
                ),
                None => {
                    writeln!(out, "rank {rank}/{}: search complete", comm.size())?;
                    Ok(())
                }
            }
        }
        ("build", ClusterBackend::Sim { ranks }) => {
            let outcome = Cluster::new(ClusterConfig::new(ranks)).run(|comm| {
                cluster_build_rank(comm, &db, &grouping, &cfg).unwrap_or_else(|e| panic!("{e}"))
            });
            let shards = outcome
                .results
                .into_iter()
                .next()
                .flatten()
                .expect("rank 0 returns the shards");
            write_cluster_build_outputs(args, "sim", ranks, &shards, out)
        }
        ("build", ClusterBackend::Tcp { hostfile, rank }) => {
            let mut comm = tcp_communicator(&hostfile, rank, timeout, false, fault_plan.as_ref())?;
            let size = comm.size();
            match cluster_build_rank(&mut comm, &db, &grouping, &cfg)? {
                Some(shards) => write_cluster_build_outputs(args, "tcp", size, &shards, out),
                None => {
                    writeln!(out, "rank {rank}/{size}: shard shipped")?;
                    Ok(())
                }
            }
        }
        _ => unreachable!("launch handled above"),
    }
}

/// Connects this process into the TCP mesh and wraps it in a wall-clock
/// [`Communicator`]. With a `--fault-plan`, the transport is wrapped in a
/// [`lbe_cluster::FaultyTransport`] (the plan's own `rank=` filter decides
/// which rank actually misbehaves); with `--supervise`, transient-failure
/// retries are switched on.
fn tcp_communicator(
    hostfile: &Hostfile,
    rank: usize,
    timeout: std::time::Duration,
    supervise: bool,
    fault_plan: Option<&lbe_cluster::FaultPlan>,
) -> Result<Communicator, CmdError> {
    let tcfg = TcpConfig {
        connect_timeout: timeout,
        ..TcpConfig::default()
    };
    let transport = TcpTransport::connect(hostfile, rank, &tcfg)?;
    let transport: Box<dyn lbe_cluster::Transport> = match fault_plan {
        Some(plan) => Box::new(lbe_cluster::FaultyTransport::wrap(
            Box::new(transport),
            plan.for_rank(rank),
        )),
        None => Box::new(transport),
    };
    let mut comm = Communicator::over(transport, CommCostModel::default(), timeout);
    if supervise {
        comm = comm.with_retry(lbe_cluster::RetryPolicy::standard());
    }
    Ok(comm)
}

/// Rank 0's `cluster search` output: the same TSV/CSV report `search`
/// writes (so reports diff cleanly against the single-process goldens),
/// plus the optional `--bench-out` JSON of measured per-rank times.
fn write_cluster_search_outputs<W: Write>(
    args: &Args,
    backend: &str,
    time_base: &str,
    queries: &[Spectrum],
    peptides: usize,
    report: &lbe_core::DistributedSearchReport,
    out: &mut W,
) -> Result<(), CmdError> {
    let output = args.require("out")?;
    let sep = if args.has("csv") { ',' } else { '\t' };
    let top_k = args.get_parsed("top-k", 10usize)?;
    let mut sink = std::io::BufWriter::new(std::fs::File::create(output)?);
    writeln!(sink, "{}", result_header(sep))?;
    let mut total_psms = 0usize;
    for (q, merged) in queries.iter().zip(&report.psms) {
        let rows: Vec<Psm> = merged
            .iter()
            .map(|g| Psm {
                entry: 0,
                peptide: g.peptide,
                modform: g.modform,
                shared_peaks: g.shared_peaks,
                score: g.score,
            })
            .collect();
        total_psms += write_result_rows(&mut sink, q.scan, &rows, top_k, sep)?;
    }
    sink.flush()?;
    writeln!(
        out,
        "cluster search ({backend}, {} ranks): {} queries, wrote {total_psms} PSMs to {output}",
        report.ranks,
        queries.len(),
    )?;
    if let Some(rec) = &report.recovery {
        writeln!(
            out,
            "recovery: ranks_lost={} {:?}, queries_reexecuted={}, recovery_seconds={:.3}",
            rec.ranks_lost.len(),
            rec.ranks_lost,
            rec.queries_reexecuted,
            rec.recovery_seconds,
        )?;
    }
    if let Some(bench) = args.get("bench-out") {
        if bench.is_empty() {
            return Err(Box::new(ArgError("--bench-out needs a file path".into())));
        }
        write_bench_json(bench, backend, time_base, peptides, queries.len(), report)?;
        writeln!(out, "wrote cluster bench to {bench}")?;
    }
    Ok(())
}

/// Serializes the measured (or simulated) per-rank timing profile as JSON —
/// the paper-figure quantities (per-rank query times, makespans, load
/// imbalance) on whichever clock the backend runs.
fn write_bench_json(
    path: &str,
    backend: &str,
    time_base: &str,
    peptides: usize,
    queries: usize,
    report: &lbe_core::DistributedSearchReport,
) -> Result<(), CmdError> {
    fn floats(v: &[f64]) -> String {
        v.iter()
            .map(|x| format!("{x:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
    let json = format!(
        "{{\n  \"backend\": \"{backend}\",\n  \"time_base\": \"{time_base}\",\n  \
         \"ranks\": {},\n  \"policy\": \"{}\",\n  \"peptides\": {peptides},\n  \
         \"queries\": {queries},\n  \"candidate_psms\": {},\n  \
         \"rank_query_seconds\": [{}],\n  \"rank_total_seconds\": [{}],\n  \
         \"query_makespan_seconds\": {:.6},\n  \"execution_makespan_seconds\": {:.6},\n  \
         \"load_imbalance_pct\": {:.3}\n}}\n",
        report.ranks,
        report.policy,
        report.total_candidates,
        floats(&report.rank_query_times),
        floats(&report.total_times),
        report.query_time(),
        report.execution_time(),
        report.imbalance.load_imbalance_pct(),
    );
    std::fs::write(path, json)?;
    Ok(())
}

/// Rank 0's `cluster build` output: the shard files plus manifest.
fn write_cluster_build_outputs<W: Write>(
    args: &Args,
    backend: &str,
    ranks: usize,
    shards: &[lbe_core::ShardBlob],
    out: &mut W,
) -> Result<(), CmdError> {
    let dir = std::path::PathBuf::from(args.require("out")?);
    write_shards(&dir, shards)?;
    let spectra: usize = shards.iter().map(|s| s.spectra).sum();
    let ions: usize = shards.iter().map(|s| s.ions).sum();
    let bytes: usize = shards.iter().map(|s| s.blob.len()).sum();
    writeln!(
        out,
        "cluster build ({backend}, {ranks} ranks): {} shards, {spectra} spectra, \
         {ions} ions, {bytes} bytes -> {}",
        shards.len(),
        dir.display(),
    )?;
    Ok(())
}

/// `--launch`: spawn `ranks` local copies of this binary, one per rank,
/// talking over loopback TCP — the multi-process test/benchmark driver.
/// Each child re-runs this exact command line with `--launch` swapped for
/// `--hostfile`/`--rank`; rank 0's stdout is passed through, other ranks
/// are silenced (stderr stays visible for errors everywhere).
fn launch_local_cluster<W: Write>(
    args: &Args,
    sub: &str,
    ranks: usize,
    out: &mut W,
) -> Result<(), CmdError> {
    use std::process::{Command, Stdio};

    // Pick N free loopback ports by binding ephemeral listeners, then
    // release them just before the children bind. (A tiny bind race in
    // exchange for a hostfile the children can open themselves.)
    let mut addrs = Vec::with_capacity(ranks);
    {
        let listeners: Vec<std::net::TcpListener> = (0..ranks)
            .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        for l in &listeners {
            addrs.push(l.local_addr()?);
        }
    }
    let dir = std::env::temp_dir().join(format!("lbe-cluster-launch-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let hostfile_path = dir.join("hostfile");
    let text: String = addrs
        .iter()
        .enumerate()
        .map(|(r, a)| format!("{r} {a}\n"))
        .collect();
    std::fs::write(&hostfile_path, text)?;

    let exe = std::env::current_exe()?;
    let mut base: Vec<String> = vec!["cluster".into(), sub.into()];
    for key in args.option_keys() {
        if key == "launch" {
            continue;
        }
        base.push(format!("--{key}"));
        match args.get(key) {
            Some("") | None => {}
            Some(v) => base.push(v.to_string()),
        }
    }

    let mut children = Vec::with_capacity(ranks);
    for r in 0..ranks {
        let mut cmd = Command::new(&exe);
        cmd.args(&base)
            .arg("--hostfile")
            .arg(&hostfile_path)
            .arg("--rank")
            .arg(r.to_string())
            .stdout(if r == 0 {
                Stdio::inherit()
            } else {
                Stdio::null()
            })
            .stderr(Stdio::inherit());
        children.push((r, cmd.spawn()?));
    }
    // Under --supervise, a worker (never rank 0) dying is an *expected*
    // outcome the master recovers from — fault-injection kills exit with
    // FAULT_DEATH_EXIT_CODE, and any other worker failure is survivable.
    let supervising = args.has("supervise");
    let mut failed = Vec::new();
    let mut lost = Vec::new();
    for (r, mut child) in children {
        let status = child.wait()?;
        if !status.success() {
            if supervising && r != 0 {
                lost.push(format!("rank {r} ({status})"));
            } else {
                failed.push(format!("rank {r} exited with {status}"));
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    if !failed.is_empty() {
        return Err(Box::new(ArgError(format!(
            "cluster launch failed: {}",
            failed.join("; ")
        ))));
    }
    if lost.is_empty() {
        writeln!(out, "launched {ranks} local ranks; all exited cleanly")?;
    } else {
        writeln!(
            out,
            "launched {ranks} local ranks; rank 0 recovered from lost worker(s): {}",
            lost.join(", ")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::args::Args;

    fn run(cmdline: &str) -> Result<String, CmdError> {
        let args = Args::parse(cmdline.split_whitespace().map(String::from))?;
        let mut out = Vec::new();
        dispatch(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("lbe_cli_tests").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn help_prints_usage() {
        let text = run("help").unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("cluster-db"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run("frobnicate").is_err());
    }

    #[test]
    fn full_file_pipeline() {
        let d = tmpdir("pipeline");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();

        let msg = run(&format!(
            "synth-proteome --out {} --proteins 25 --seed 3",
            p("prot.fasta")
        ))
        .unwrap();
        assert!(msg.contains("25 proteins"));

        let msg = run(&format!(
            "digest --in {} --out {}",
            p("prot.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        assert!(msg.contains("unique"));

        let msg = run(&format!(
            "cluster-db --in {} --out {} --criterion 2",
            p("pep.fasta"),
            p("clustered.fasta")
        ))
        .unwrap();
        assert!(msg.contains("groups"));

        let msg = run(&format!(
            "synth-queries --db {} --out {} --n 12 --seed 9",
            p("pep.fasta"),
            p("q.ms2")
        ))
        .unwrap();
        assert!(msg.contains("12 query spectra"));

        let msg = run(&format!(
            "index --db {} --out {}",
            p("clustered.fasta"),
            p("idx.lbe")
        ))
        .unwrap();
        assert!(msg.contains("indexed"));
        assert!(msg.contains("chunk(s)"));
        // The file on disk is a v2 chunked container.
        assert_eq!(
            &std::fs::read(p("idx.lbe")).unwrap()[..8],
            lbe_index::io::MAGIC_CHUNKED
        );

        let msg = run(&format!(
            "search --index {} --queries {} --out {} --top-k 3",
            p("idx.lbe"),
            p("q.ms2"),
            p("results.tsv")
        ))
        .unwrap();
        assert!(msg.contains("PSMs"));
        let tsv = std::fs::read_to_string(p("results.tsv")).unwrap();
        assert!(tsv.starts_with("scan\trank\tpeptide"));
        assert!(tsv.lines().count() > 1);

        let msg = run(&format!(
            "simulate --db {} --queries {} --ranks 4 --policy cyclic",
            p("pep.fasta"),
            p("q.ms2")
        ))
        .unwrap();
        assert!(msg.contains("load imbalance"));
        assert!(msg.contains("candidate PSMs"));
    }

    #[test]
    fn index_lifecycle_pipeline() {
        let d = tmpdir("lifecycle");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();
        let _ = std::fs::remove_dir_all(d.join("store"));

        run(&format!(
            "synth-proteome --out {} --proteins 30 --seed 11",
            p("prot.fasta")
        ))
        .unwrap();
        run(&format!(
            "digest --in {} --out {}",
            p("prot.fasta"),
            p("pep.fasta")
        ))
        .unwrap();

        // Split the peptide FASTA into halves on a record (2-line)
        // boundary; the delta re-includes the first record so the append
        // path has a duplicate to skip.
        let all = std::fs::read_to_string(p("pep.fasta")).unwrap();
        let lines: Vec<&str> = all.lines().collect();
        let half = lines.len() / 4 * 2;
        assert!(half >= 2 && half < lines.len());
        std::fs::write(p("base.fasta"), lines[..half].join("\n") + "\n").unwrap();
        let delta = [&lines[..2], &lines[half..]].concat().join("\n") + "\n";
        std::fs::write(p("delta.fasta"), delta).unwrap();

        let msg = run(&format!(
            "index init --db {} --out {} --chunk-size 64",
            p("base.fasta"),
            p("store")
        ))
        .unwrap();
        assert!(msg.contains("initialized generation store"));

        let msg = run(&format!(
            "index append --index {} --db {}",
            p("store"),
            p("delta.fasta")
        ))
        .unwrap();
        assert!(msg.contains("appended"));
        assert!(msg.contains("1 duplicates skipped"));

        let msg = run(&format!("index compact --index {}", p("store"))).unwrap();
        assert!(msg.contains("compacted"));
        let msg = run(&format!("index gc --index {}", p("store"))).unwrap();
        assert!(msg.contains("gc: deleted"));

        let msg = run(&format!("index stats --index {}", p("store"))).unwrap();
        assert!(msg.contains("stored"));
        assert!(msg.contains("live"));
        assert!(!msg.contains("tomb "));

        // The compacted store must search identically to a from-scratch
        // single-file index over the same peptide set.
        run(&format!(
            "index --db {} --out {}",
            p("pep.fasta"),
            p("full.lbe")
        ))
        .unwrap();
        run(&format!(
            "synth-queries --db {} --out {} --n 10 --seed 5",
            p("pep.fasta"),
            p("q.ms2")
        ))
        .unwrap();
        run(&format!(
            "search --index {} --queries {} --out {} --top-k 5",
            p("store"),
            p("q.ms2"),
            p("gen.tsv")
        ))
        .unwrap();
        run(&format!(
            "search --index {} --queries {} --out {} --top-k 5",
            p("full.lbe"),
            p("q.ms2"),
            p("full.tsv")
        ))
        .unwrap();
        assert_eq!(
            std::fs::read(p("gen.tsv")).unwrap(),
            std::fs::read(p("full.tsv")).unwrap()
        );

        // `stats` also inventories a plain LBECHK2 file.
        let msg = run(&format!("index stats --index {}", p("full.lbe"))).unwrap();
        assert!(msg.contains("stored"));

        assert!(run(&format!("index bogus --index {}", p("store"))).is_err());
        assert!(run(&format!(
            "index init --db {} --out {}",
            p("base.fasta"),
            p("store")
        ))
        .is_err());
    }

    #[test]
    fn digest_rejects_missing_files() {
        assert!(run("digest --in /nonexistent/x.fasta --out /tmp/y.fasta").is_err());
    }

    #[test]
    fn unknown_option_rejected() {
        assert!(run("digest --in a --out b --bogus 1").is_err());
    }

    #[test]
    fn bad_policy_rejected() {
        let d = tmpdir("badpol");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();
        run(&format!(
            "synth-proteome --out {} --proteins 5",
            p("p.fasta")
        ))
        .unwrap();
        run(&format!(
            "digest --in {} --out {}",
            p("p.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        run(&format!(
            "synth-queries --db {} --out {} --n 2",
            p("pep.fasta"),
            p("q.ms2")
        ))
        .unwrap();
        let err = run(&format!(
            "simulate --db {} --queries {} --policy zigzag",
            p("pep.fasta"),
            p("q.ms2")
        ));
        assert!(err.is_err());
    }

    #[test]
    fn mzml_query_path() {
        let d = tmpdir("mzml");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();
        run(&format!(
            "synth-proteome --out {} --proteins 8",
            p("p.fasta")
        ))
        .unwrap();
        run(&format!(
            "digest --in {} --out {}",
            p("p.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        run(&format!(
            "synth-queries --db {} --out {} --n 5 --format mzml",
            p("pep.fasta"),
            p("q.mzML")
        ))
        .unwrap();
        run(&format!(
            "index --db {} --out {}",
            p("pep.fasta"),
            p("i.slm")
        ))
        .unwrap();
        let msg = run(&format!(
            "search --index {} --queries {} --out {}",
            p("i.slm"),
            p("q.mzML"),
            p("r.tsv")
        ))
        .unwrap();
        assert!(msg.contains("searched 5 spectra"));
        assert!(run(&format!(
            "synth-queries --db {} --out {} --format bogus",
            p("pep.fasta"),
            p("x")
        ))
        .is_err());
    }

    #[test]
    fn cluster_db_criterion_variants() {
        let d = tmpdir("criterion");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();
        run(&format!(
            "synth-proteome --out {} --proteins 10 --seed 5",
            p("p.fasta")
        ))
        .unwrap();
        run(&format!(
            "digest --in {} --out {}",
            p("p.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        // Criterion 1 (absolute edit distance) with an explicit d.
        let msg = run(&format!(
            "cluster-db --in {} --out {} --criterion 1 --d 3",
            p("pep.fasta"),
            p("c1.fasta")
        ))
        .unwrap();
        assert!(msg.contains("groups"));
        // Criterion 3 does not exist.
        let err = run(&format!(
            "cluster-db --in {} --out {} --criterion 3",
            p("pep.fasta"),
            p("c3.fasta")
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--criterion must be 1 or 2"));
    }

    #[test]
    fn mgf_query_path() {
        let d = tmpdir("mgf");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();
        run(&format!(
            "synth-proteome --out {} --proteins 8 --seed 2",
            p("p.fasta")
        ))
        .unwrap();
        run(&format!(
            "digest --in {} --out {}",
            p("p.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        run(&format!(
            "synth-queries --db {} --out {} --n 4",
            p("pep.fasta"),
            p("q.ms2")
        ))
        .unwrap();
        // Convert to MGF so `search` exercises its extension dispatch.
        let spectra = lbe_spectra::ms2::read_ms2_path(p("q.ms2")).unwrap();
        let f = std::fs::File::create(p("q.mgf")).unwrap();
        lbe_spectra::mgf::write_mgf(f, &spectra).unwrap();
        run(&format!(
            "index --db {} --out {}",
            p("pep.fasta"),
            p("i.slm")
        ))
        .unwrap();
        let msg = run(&format!(
            "search --index {} --queries {} --out {}",
            p("i.slm"),
            p("q.mgf"),
            p("r.tsv")
        ))
        .unwrap();
        assert!(msg.contains("searched 4 spectra"));
    }

    #[test]
    fn bad_mods_message_lists_choices() {
        let d = tmpdir("badmods");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();
        run(&format!(
            "synth-proteome --out {} --proteins 5",
            p("p.fasta")
        ))
        .unwrap();
        run(&format!(
            "digest --in {} --out {}",
            p("p.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        let err = run(&format!(
            "index --db {} --out {} --mods sumo",
            p("pep.fasta"),
            p("i.slm")
        ))
        .unwrap_err();
        assert!(err.to_string().contains("none|oxidation|paper"));
    }

    /// Builds the proteome → peptides → queries → index fixture shared by
    /// the disk-backed search tests.
    fn search_fixture(dir: &str) -> impl Fn(&str) -> String {
        let d = tmpdir(dir);
        let p = move |n: &str| d.join(n).to_string_lossy().to_string();
        run(&format!(
            "synth-proteome --out {} --proteins 12 --seed 11",
            p("p.fasta")
        ))
        .unwrap();
        run(&format!(
            "digest --in {} --out {}",
            p("p.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        run(&format!(
            "synth-queries --db {} --out {} --n 8 --seed 12",
            p("pep.fasta"),
            p("q.ms2")
        ))
        .unwrap();
        p
    }

    #[test]
    fn search_with_resident_budget_matches_unbounded() {
        let p = search_fixture("resident_budget");
        // Small chunks so the container really has several.
        let msg = run(&format!(
            "index --db {} --out {} --chunk-size 25",
            p("pep.fasta"),
            p("i.lbe")
        ))
        .unwrap();
        assert!(msg.contains("chunk(s)"));
        run(&format!(
            "search --index {} --queries {} --out {}",
            p("i.lbe"),
            p("q.ms2"),
            p("all.tsv")
        ))
        .unwrap();
        let msg = run(&format!(
            "search --index {} --queries {} --out {} --max-resident-chunks 1",
            p("i.lbe"),
            p("q.ms2"),
            p("one.tsv")
        ))
        .unwrap();
        assert!(msg.contains("faults"));
        // Identical result files: residency is invisible in the output.
        assert_eq!(
            std::fs::read_to_string(p("all.tsv")).unwrap(),
            std::fs::read_to_string(p("one.tsv")).unwrap()
        );
        assert!(run(&format!(
            "search --index {} --queries {} --out {} --max-resident-chunks -1",
            p("i.lbe"),
            p("q.ms2"),
            p("bad.tsv")
        ))
        .is_err());
    }

    #[test]
    fn search_csv_output_shape() {
        let p = search_fixture("csv_search");
        run(&format!(
            "index --db {} --out {}",
            p("pep.fasta"),
            p("i.lbe")
        ))
        .unwrap();
        run(&format!(
            "search --index {} --queries {} --out {} --csv --top-k 2",
            p("i.lbe"),
            p("q.ms2"),
            p("r.csv")
        ))
        .unwrap();
        let csv = std::fs::read_to_string(p("r.csv")).unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "scan,rank,peptide,modform,shared_peaks,score"
        );
        let first = lines.next().expect("at least one PSM row");
        assert_eq!(first.split(',').count(), 6, "row: {first}");
        // Every data row parses: scan, rank, peptide, modform, shared as
        // integers; score as a float.
        for row in csv.lines().skip(1) {
            let cols: Vec<&str> = row.split(',').collect();
            assert_eq!(cols.len(), 6, "row: {row}");
            for c in &cols[..5] {
                c.parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad int {c} in {row}"));
            }
            cols[5].parse::<f64>().unwrap();
        }
    }

    #[test]
    fn search_reads_legacy_v1_single_index_files() {
        let p = search_fixture("legacy_v1");
        // Write a v1 file directly through the legacy writer.
        let db = lbe_core::ingest::load_peptide_db(p("pep.fasta")).unwrap();
        let idx = lbe_index::IndexBuilder::new(
            lbe_index::SlmConfig::default(),
            lbe_bio::mods::ModSpec::none(),
        )
        .build(&db);
        let f = std::fs::File::create(p("old.slm")).unwrap();
        lbe_index::write_index_v1(f, &idx).unwrap();
        let msg = run(&format!(
            "search --index {} --queries {} --out {}",
            p("old.slm"),
            p("q.ms2"),
            p("r.tsv")
        ))
        .unwrap();
        assert!(msg.contains("single index"));
        assert!(std::fs::read_to_string(p("r.tsv")).unwrap().lines().count() > 1);
    }

    #[test]
    fn simulate_csv_output_shape_and_spill_dir() {
        let p = search_fixture("sim_csv");
        let spill = tmpdir("sim_csv_spill");
        let msg = run(&format!(
            "simulate --db {} --queries {} --ranks 3 --csv --spill-dir {}",
            p("pep.fasta"),
            p("q.ms2"),
            spill.to_string_lossy()
        ))
        .unwrap();
        let mut lines = msg.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("policy,ranks,peptides,"));
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), header.split(',').count());
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols[0], "cyclic");
        assert_eq!(cols[1], "3");
        assert!(cols[6].parse::<f64>().unwrap() > 0.0); // query_time_s
        assert!(lines.next().is_none(), "csv mode prints exactly two lines");
        // The spill directory holds one v2 container per rank.
        for rank in 0..3 {
            let f = spill.join(format!("rank{rank:04}.slm2"));
            assert!(f.exists(), "{f:?} missing");
            assert_eq!(&std::fs::read(&f).unwrap()[..8], lbe_index::io::MAGIC_V2);
        }
        std::fs::remove_dir_all(&spill).ok();
    }

    #[test]
    fn index_rejects_zero_chunk_size() {
        let p = search_fixture("zero_chunk");
        let err = run(&format!(
            "index --db {} --out {} --chunk-size 0",
            p("pep.fasta"),
            p("i.lbe")
        ))
        .unwrap_err();
        assert!(err.to_string().contains("chunk-size"));
    }

    #[test]
    fn mods_variants_accepted() {
        let d = tmpdir("mods");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();
        run(&format!(
            "synth-proteome --out {} --proteins 5",
            p("p.fasta")
        ))
        .unwrap();
        run(&format!(
            "digest --in {} --out {}",
            p("p.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        for mods in ["none", "oxidation", "paper"] {
            run(&format!(
                "index --db {} --out {} --mods {mods}",
                p("pep.fasta"),
                p("i.slm")
            ))
            .unwrap();
        }
        assert!(run(&format!(
            "index --db {} --out {} --mods bogus",
            p("pep.fasta"),
            p("i.slm")
        ))
        .is_err());
    }

    #[test]
    fn index_and_simulate_accept_raw_proteome_with_digest_flag() {
        let d = tmpdir("digest_flag");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();
        run(&format!(
            "synth-proteome --out {} --proteins 10 --seed 4",
            p("prot.fasta")
        ))
        .unwrap();
        // `index --digest` takes the raw proteome directly...
        let msg = run(&format!(
            "index --db {} --out {} --digest",
            p("prot.fasta"),
            p("i.lbe")
        ))
        .unwrap();
        assert!(msg.contains("unique peptides"));
        assert!(msg.contains("indexed"));
        // ...and produces the same index file as the two-step path.
        run(&format!(
            "digest --in {} --out {}",
            p("prot.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        run(&format!(
            "index --db {} --out {}",
            p("pep.fasta"),
            p("i2.lbe")
        ))
        .unwrap();
        assert_eq!(
            std::fs::read(p("i.lbe")).unwrap(),
            std::fs::read(p("i2.lbe")).unwrap(),
            "--digest index differs from digest-then-index"
        );
        // `simulate --digest` runs end-to-end on the raw proteome too.
        run(&format!(
            "synth-queries --db {} --out {} --n 4",
            p("pep.fasta"),
            p("q.ms2")
        ))
        .unwrap();
        let msg = run(&format!(
            "simulate --db {} --queries {} --ranks 2 --digest",
            p("prot.fasta"),
            p("q.ms2")
        ))
        .unwrap();
        assert!(msg.contains("load imbalance"));
    }

    #[test]
    fn simulate_stream_db_matches_in_memory_run() {
        let p = search_fixture("stream_db");
        let base = format!(
            "simulate --db {} --queries {} --ranks 3 --csv",
            p("pep.fasta"),
            p("q.ms2")
        );
        let in_mem = run(&base).unwrap();
        let streamed = run(&format!("{base} --stream-db")).unwrap();
        assert_eq!(in_mem, streamed, "--stream-db changed the report");
        // --stream-db needs record/id alignment, which --digest destroys.
        let err = run(&format!("{base} --stream-db --digest")).unwrap_err();
        assert!(err.to_string().contains("--stream-db"));
    }

    #[test]
    fn synth_queries_mgf_format_searchable() {
        let p = search_fixture("mgf_format");
        run(&format!(
            "synth-queries --db {} --out {} --n 6 --seed 12 --format mgf",
            p("pep.fasta"),
            p("q.mgf")
        ))
        .unwrap();
        run(&format!(
            "index --db {} --out {}",
            p("pep.fasta"),
            p("i.lbe")
        ))
        .unwrap();
        let msg = run(&format!(
            "search --index {} --queries {} --out {}",
            p("i.lbe"),
            p("q.mgf"),
            p("r.tsv")
        ))
        .unwrap();
        assert!(msg.contains("searched 6 spectra"));
    }

    #[test]
    fn search_sniffs_extensionless_query_files() {
        let p = search_fixture("sniff");
        // Same spectra, no extension: content sniffing must kick in.
        std::fs::copy(p("q.ms2"), p("queries_noext")).unwrap();
        run(&format!(
            "index --db {} --out {}",
            p("pep.fasta"),
            p("i.lbe")
        ))
        .unwrap();
        let msg = run(&format!(
            "search --index {} --queries {} --out {}",
            p("i.lbe"),
            p("queries_noext"),
            p("r.tsv")
        ))
        .unwrap();
        assert!(msg.contains("searched 8 spectra"));
    }

    #[test]
    fn simulate_csv_stays_machine_readable_with_ms1_and_digest() {
        // Ingest notes (skipped-MS1 count, --digest summary) must not
        // precede the CSV header: csv mode prints exactly two lines even
        // when both note sources fire.
        let d = tmpdir("csv_notes");
        let p = |n: &str| d.join(n).to_string_lossy().to_string();
        run(&format!(
            "synth-proteome --out {} --proteins 10 --seed 6",
            p("prot.fasta")
        ))
        .unwrap();
        run(&format!(
            "digest --in {} --out {}",
            p("prot.fasta"),
            p("pep.fasta")
        ))
        .unwrap();
        run(&format!(
            "synth-queries --db {} --out {} --n 3 --format mzml",
            p("pep.fasta"),
            p("q.mzML")
        ))
        .unwrap();
        let text = std::fs::read_to_string(p("q.mzML")).unwrap();
        let ms1 = "<spectrum id=\"scan=9999\"><cvParam accession=\"MS:1000511\" name=\"ms level\" value=\"1\"/></spectrum>\n";
        std::fs::write(
            p("q.mzML"),
            text.replacen("      <spectrum ", &format!("{ms1}      <spectrum "), 1),
        )
        .unwrap();
        let msg = run(&format!(
            "simulate --db {} --queries {} --ranks 2 --csv --digest",
            p("prot.fasta"),
            p("q.mzML")
        ))
        .unwrap();
        let lines: Vec<&str> = msg.lines().collect();
        assert_eq!(
            lines.len(),
            2,
            "csv mode must print exactly two lines: {msg}"
        );
        assert!(lines[0].starts_with("policy,ranks,"), "{msg}");
        // Without --csv the notes do appear.
        let msg = run(&format!(
            "simulate --db {} --queries {} --ranks 2 --digest",
            p("prot.fasta"),
            p("q.mzML")
        ))
        .unwrap();
        assert!(msg.contains("skipped 1 non-MS2 spectra"), "{msg}");
        assert!(msg.contains("unique peptides"), "{msg}");
    }

    #[test]
    fn search_reports_skipped_ms1_scans() {
        let p = search_fixture("ms1_note");
        run(&format!(
            "synth-queries --db {} --out {} --n 3 --seed 12 --format mzml",
            p("pep.fasta"),
            p("q.mzML")
        ))
        .unwrap();
        // Interleave an MS1 survey scan (no precursor) like a default
        // msconvert conversion would contain.
        let text = std::fs::read_to_string(p("q.mzML")).unwrap();
        let ms1 = r#"<spectrum id="scan=9999"><cvParam accession="MS:1000511" name="ms level" value="1"/></spectrum>
"#;
        let text = text.replacen("      <spectrum ", &format!("{ms1}      <spectrum "), 1);
        std::fs::write(p("q.mzML"), text).unwrap();
        run(&format!(
            "index --db {} --out {}",
            p("pep.fasta"),
            p("i.lbe")
        ))
        .unwrap();
        let msg = run(&format!(
            "search --index {} --queries {} --out {}",
            p("i.lbe"),
            p("q.mzML"),
            p("r.tsv")
        ))
        .unwrap();
        assert!(msg.contains("skipped 1 non-MS2 spectra"), "message: {msg}");
        assert!(msg.contains("searched 3 spectra"));
    }

    #[test]
    fn query_failure_preserves_existing_out_file() {
        let p = search_fixture("query_out_preserved");
        std::fs::write(p("r.tsv"), "precious previous results\n").unwrap();
        // A typo'd queries file fails before the results file is touched…
        assert!(run(&format!(
            "query --addr 127.0.0.1:1 --queries {} --out {}",
            p("nonexistent.ms2"),
            p("r.tsv")
        ))
        .is_err());
        assert_eq!(
            std::fs::read_to_string(p("r.tsv")).unwrap(),
            "precious previous results\n"
        );
        // …and so does a dead server (port 1 is never listening).
        let err = run(&format!(
            "query --addr 127.0.0.1:1 --queries {} --out {}",
            p("q.ms2"),
            p("r.tsv")
        ))
        .unwrap_err();
        assert!(err.to_string().contains("cannot connect"), "{err}");
        assert_eq!(
            std::fs::read_to_string(p("r.tsv")).unwrap(),
            "precious previous results\n"
        );
    }

    #[test]
    fn simulate_out_written_on_success_preserved_on_failure() {
        let p = search_fixture("sim_out_preserved");
        // Success: the report lands in the file, stdout gets only the
        // confirmation line (plus ingest notes) — not the report itself.
        let msg = run(&format!(
            "simulate --db {} --queries {} --ranks 3 --out {}",
            p("pep.fasta"),
            p("q.ms2"),
            p("report.txt")
        ))
        .unwrap();
        assert!(msg.contains("wrote simulation report to"), "{msg}");
        assert!(!msg.contains("load imbalance"), "report leaked to stdout");
        let report = std::fs::read_to_string(p("report.txt")).unwrap();
        assert!(report.contains("load imbalance"));
        assert!(report.contains("candidate PSMs"));
        // --csv --out: machine row in the file, confirmation on stdout.
        let msg = run(&format!(
            "simulate --db {} --queries {} --ranks 3 --csv --out {}",
            p("pep.fasta"),
            p("q.ms2"),
            p("report.csv")
        ))
        .unwrap();
        assert_eq!(msg.lines().count(), 1, "stdout is one confirmation line");
        let csv = std::fs::read_to_string(p("report.csv")).unwrap();
        assert!(csv.starts_with("policy,ranks,peptides,"));
        assert_eq!(csv.lines().count(), 2);
        // Failure: a bad queries path must leave the previous report alone.
        std::fs::write(p("report.txt"), "precious previous report\n").unwrap();
        assert!(run(&format!(
            "simulate --db {} --queries {} --ranks 3 --out {}",
            p("pep.fasta"),
            p("missing.ms2"),
            p("report.txt")
        ))
        .is_err());
        assert_eq!(
            std::fs::read_to_string(p("report.txt")).unwrap(),
            "precious previous report\n"
        );
        // A valueless --out is rejected up front.
        let err = run(&format!(
            "simulate --db {} --queries {} --out",
            p("pep.fasta"),
            p("q.ms2")
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--out needs a file path"), "{err}");
    }
}
