//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional args, and `--key value`
/// options (flags without values hold `""`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options, keys without the leading dashes.
    options: HashMap<String, String>,
}

/// A parse/validation failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses tokens (exclusive of the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("empty flag '--'".into()));
                }
                // A value follows unless the next token is another flag.
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap(),
                    _ => String::new(),
                };
                if args.options.insert(key.to_string(), value).is_some() {
                    return Err(ArgError(format!("duplicate option --{key}")));
                }
            } else if args.command.is_empty() {
                args.command = tok;
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// `true` if the flag was present (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// An optional parsed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{key}: {v:?}"))),
        }
    }

    /// All provided option keys (for unknown-flag diagnostics).
    pub fn option_keys(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }

    /// Errors on any option not in `allowed`.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.option_keys() {
            if !allowed.contains(&k) {
                return Err(ArgError(format!(
                    "unknown option --{k} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn command_and_options() {
        let a = parse("digest --in x.fasta --missed-cleavages 2").unwrap();
        assert_eq!(a.command, "digest");
        assert_eq!(a.require("in").unwrap(), "x.fasta");
        assert_eq!(a.get_parsed::<u8>("missed-cleavages", 0).unwrap(), 2);
    }

    #[test]
    fn defaults_applied() {
        let a = parse("digest").unwrap();
        assert_eq!(a.get_parsed::<usize>("gsize", 20).unwrap(), 20);
        assert!(a.get("out").is_none());
    }

    #[test]
    fn flags_without_values() {
        let a = parse("index --verbose --out x").unwrap();
        assert!(a.has("verbose"));
        assert_eq!(a.require("out").unwrap(), "x");
    }

    #[test]
    fn positional_args() {
        let a = parse("search a.slm b.ms2").unwrap();
        assert_eq!(a.positional, vec!["a.slm", "b.ms2"]);
    }

    #[test]
    fn errors() {
        assert!(parse("x --a 1 --a 2").is_err()); // duplicate
        assert!(parse("x --").is_err()); // empty flag
        let a = parse("x").unwrap();
        assert!(a.require("in").is_err()); // missing
        let a = parse("x --n abc").unwrap();
        assert!(a.get_parsed::<usize>("n", 0).is_err()); // bad value
    }

    #[test]
    fn reject_unknown_flags() {
        let a = parse("x --in f --bogus 1").unwrap();
        assert!(a.reject_unknown(&["in"]).is_err());
        assert!(a.reject_unknown(&["in", "bogus"]).is_ok());
    }

    #[test]
    fn empty_input() {
        let a = parse("").unwrap();
        assert!(a.command.is_empty());
    }

    #[test]
    fn error_messages_name_the_offending_option() {
        let e = parse("x --a 1 --a 2").unwrap_err();
        assert_eq!(e.to_string(), "duplicate option --a");

        let e = parse("x --").unwrap_err();
        assert_eq!(e.to_string(), "empty flag '--'");

        let a = parse("x").unwrap();
        assert_eq!(
            a.require("in").unwrap_err().to_string(),
            "missing required option --in"
        );

        let a = parse("x --n abc").unwrap();
        let e = a.get_parsed::<usize>("n", 0).unwrap_err();
        assert_eq!(e.to_string(), "invalid value for --n: \"abc\"");

        let a = parse("x --bogus 1").unwrap();
        let e = a.reject_unknown(&["in", "out"]).unwrap_err();
        assert_eq!(
            e.to_string(),
            "unknown option --bogus (allowed: --in, --out)"
        );
    }

    #[test]
    fn key_value_round_trips() {
        let a = parse("search --index a.slm --queries q.ms2 --top-k 3").unwrap();
        let mut keys: Vec<&str> = a.option_keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec!["index", "queries", "top-k"]);
        assert_eq!(a.get("index"), Some("a.slm"));
        assert_eq!(a.get("queries"), Some("q.ms2"));
        assert_eq!(a.get_parsed::<usize>("top-k", 10).unwrap(), 3);
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn flag_followed_by_flag_takes_no_value() {
        // `--verbose` must not swallow `--out` as its value.
        let a = parse("index --verbose --out x.slm").unwrap();
        assert_eq!(a.get("verbose"), Some(""));
        assert_eq!(a.require("out").unwrap(), "x.slm");
        // An empty-valued option fails `require` but satisfies `has`.
        assert!(a.require("verbose").is_err());
        assert!(a.has("verbose"));
    }

    #[test]
    fn negative_numbers_parse_as_values() {
        // A leading single dash is a value, not a flag.
        let a = parse("x --skew -0.5").unwrap();
        assert_eq!(a.get_parsed::<f64>("skew", 0.0).unwrap(), -0.5);
    }
}
