//! Command-line interface: argument parsing and subcommands.
//!
//! The binary entry point is `src/bin/lbe.rs`; everything here is a library
//! so every command is unit-testable in-process.

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{dispatch, usage, CmdError};
