//! # lbe — LBE: load balancing for parallel peptide search
//!
//! A from-scratch Rust reproduction of *"LBE: A Computational Load Balancing
//! Algorithm for Speeding up Parallel Peptide Search in Mass-Spectrometry
//! based Proteomics"* (Haseeb, Afzali & Saeed, IEEE IPDPSW 2019).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`bio`] | residue chemistry, FASTA, digestion, dedup, PTMs, synthetic proteomes |
//! | [`spectra`] | b/y-ion prediction, MS2/MGF formats, preprocessing, synthetic queries |
//! | [`index`] | SLM-style fragment-ion index with shared-peak filtering |
//! | [`cluster`] | distributed-memory simulator (thread ranks + virtual clocks) |
//! | [`core`] | LBE: Algorithm 1 grouping, Chunk/Cyclic/Random policies, mapping table, distributed engine, metrics |
//!
//! ## Quickstart
//!
//! ```
//! use lbe::core::pipeline::PipelineBuilder;
//! use lbe::core::partition::PartitionPolicy;
//!
//! // Run the full pipeline — synthetic proteome → digestion → grouping →
//! // cyclic partitioning across 4 simulated ranks → distributed search.
//! let report = PipelineBuilder::small_demo()
//!     .with_policy(PartitionPolicy::Cyclic)
//!     .run(42);
//!
//! println!("peptides indexed : {}", report.peptides);
//! println!("load imbalance   : {:.1}%", report.search.imbalance.load_imbalance_pct());
//! println!("top-1 accuracy   : {:.0}%", report.top1_accuracy() * 100.0);
//! assert!(report.top1_accuracy() > 0.5);
//! ```

#![deny(missing_docs)]

pub use lbe_bio as bio;
pub use lbe_cluster as cluster;
pub use lbe_core as core;
pub use lbe_index as index;
pub use lbe_spectra as spectra;

pub mod cli;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use lbe_bio::prelude::*;
    pub use lbe_cluster::{Cluster, ClusterConfig, Communicator};
    pub use lbe_core::prelude::*;
    pub use lbe_index::{IndexBuilder, Searcher, SlmConfig, SlmIndex};
    pub use lbe_spectra::prelude::*;
}
